"""Tests for gate-level primitives (repro.hw.gates)."""

import pytest

from repro.hw.gates import (
    GateBudget,
    GateError,
    comparator_budget,
    gmx_delta_budget,
    gmx_delta_delay_levels,
)


class TestGateBudget:
    def test_add_and_totals(self):
        budget = GateBudget().add("and2", 3).add("not", 2)
        assert budget.total_gates == 5
        assert budget.nand2_equivalents == 3 * 1.5 + 2 * 0.5

    def test_merge_with_copies(self):
        unit = GateBudget().add("xor2", 1)
        array = GateBudget().merge(unit, copies=10)
        assert array.gates["xor2"] == 10

    def test_unknown_gate_rejected(self):
        with pytest.raises(GateError):
            GateBudget().add("flux_capacitor")


class TestGmxDeltaNetlist:
    def test_handful_of_gates(self):
        """§4.2's selling point: GMXΔ is a few gates, no adder, no LUT."""
        budget = gmx_delta_budget()
        assert budget.total_gates <= 10
        assert "dff" not in budget.gates  # purely combinational

    def test_shallow_critical_path(self):
        assert gmx_delta_delay_levels() <= 4.0


class TestComparator:
    def test_dna_comparator(self):
        budget = comparator_budget(2)
        assert budget.gates["xnor2"] == 2
        assert budget.gates["and2"] == 1

    def test_single_bit_needs_no_reduction(self):
        budget = comparator_budget(1)
        assert "and2" not in budget.gates

    def test_ascii_comparator_scales(self):
        """§5: register width can grow for larger alphabets."""
        assert (
            comparator_budget(8).nand2_equivalents
            > comparator_budget(2).nand2_equivalents
        )

    def test_zero_bits_rejected(self):
        with pytest.raises(GateError):
            comparator_budget(0)
