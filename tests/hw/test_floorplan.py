"""Tests for the area/power model (repro.hw.floorplan)."""

import pytest

from repro.hw.floorplan import (
    GMX_AC_AREA_MM2,
    GMX_TB_AREA_MM2,
    GMX_TOTAL_AREA_MM2,
    gmx_area_mm2,
    gmx_power_mw,
    soc_report,
)


class TestPaperAnchors:
    def test_total_gmx_area(self):
        """§7.3: GMX adds 0.0216 mm² to the SoC."""
        assert gmx_area_mm2(32) == pytest.approx(0.0216)

    def test_module_split(self):
        """§7.3: 0.008 mm² GMX-AC and 0.0108 mm² GMX-TB."""
        assert GMX_AC_AREA_MM2 == pytest.approx(0.008)
        assert GMX_TB_AREA_MM2 == pytest.approx(0.0108)
        assert GMX_AC_AREA_MM2 + GMX_TB_AREA_MM2 < GMX_TOTAL_AREA_MM2

    def test_area_fraction_1_7_percent(self):
        report = soc_report(32)
        assert report.gmx_area_fraction == pytest.approx(0.017, rel=0.01)

    def test_power_8_47_mw_and_2_1_percent(self):
        report = soc_report(32)
        assert report.gmx_power == pytest.approx(8.47, rel=0.01)
        assert report.gmx_power_fraction == pytest.approx(0.021, rel=0.01)


class TestScaling:
    def test_area_scales_roughly_quadratically(self):
        """§6.3: cell arrays dominate, so area ≈ quadratic in T."""
        ratio = gmx_area_mm2(64) / gmx_area_mm2(32)
        assert 3.5 < ratio < 4.1

    def test_small_tiles_cheaper(self):
        assert gmx_area_mm2(8) < gmx_area_mm2(32) / 8

    def test_power_tracks_area(self):
        assert gmx_power_mw(64) / gmx_power_mw(32) == pytest.approx(
            gmx_area_mm2(64) / gmx_area_mm2(32)
        )

    def test_invalid_tile_rejected(self):
        with pytest.raises(ValueError):
            gmx_area_mm2(1)


class TestBreakdown:
    def test_component_areas_sum_to_soc(self):
        report = soc_report(32)
        total = sum(report.component_areas().values())
        assert total == pytest.approx(report.soc_area, rel=0.01)

    def test_gmx_modules_reported_individually(self):
        areas = soc_report(32).component_areas()
        assert {"gmx_ac", "gmx_tb", "gmx_csr"} <= set(areas)
        assert {"l2_cache", "core", "l1_dcache", "l1_icache"} <= set(areas)
