"""Tests for the gate-level GMX-TB array simulation (repro.hw.rtl_sim)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tile import boundary_deltas
from repro.core.traceback import pack_tile_ops, traceback_tile
from repro.hw.rtl_sim import GmxTbArraySim

dna = st.text(alphabet="ACGT", min_size=1, max_size=12)


class TestFunctionalEquivalence:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_matches_functional_traceback(self, pattern, text):
        n, m = len(pattern), len(text)
        start = (n - 1, m - 1)
        simulated = GmxTbArraySim(tile_size=12).simulate(
            pattern, text, boundary_deltas(n), boundary_deltas(m), start
        )
        reference = traceback_tile(
            pattern, text, boundary_deltas(n), boundary_deltas(m), start,
            tile_size=12,
        )
        assert simulated.ops == reference.ops
        assert simulated.next_tile_code == reference.next_tile.code

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_register_images_match_packer(self, pattern, text):
        """The hardware's gmx_lo/gmx_hi must equal the ISA-level packing."""
        n, m = len(pattern), len(text)
        start = (n - 1, m - 1)
        simulated = GmxTbArraySim(tile_size=12).simulate(
            pattern, text, boundary_deltas(n), boundary_deltas(m), start
        )
        reference = traceback_tile(
            pattern, text, boundary_deltas(n), boundary_deltas(m), start,
            tile_size=12,
        )
        lo, hi = pack_tile_ops(
            reference.ops, start, reference.next_tile, tile_size=12
        )
        assert (simulated.gmx_lo, simulated.gmx_hi) == (lo, hi)

    def test_start_on_right_edge(self):
        """Traceback may start anywhere on the bottom/right edge."""
        simulated = GmxTbArraySim(tile_size=8).simulate(
            "ACGTACGT", "ACGT", boundary_deltas(8), boundary_deltas(4), (3, 3)
        )
        assert simulated.ops  # a path was produced
        cost = sum(1 for op in simulated.ops if op != "M")
        assert cost >= 0


class TestTiming:
    def test_paper_latency(self):
        """6-stage design at T = 32 (§6.3)."""
        sim = GmxTbArraySim(tile_size=32, stages=6)
        result = sim.simulate(
            "ACGT" * 8, "ACGT" * 8, boundary_deltas(32), boundary_deltas(32),
            (31, 31),
        )
        assert result.latency_cycles == 6

    def test_one_op_per_antidiagonal_enforced(self):
        """The invariant the register packing depends on (§6.2)."""
        sim = GmxTbArraySim(tile_size=10)
        result = sim.simulate(
            "ACGTACGTAC", "TGCATGCATG",
            boundary_deltas(10), boundary_deltas(10), (9, 9),
        )
        assert len(result.ops) <= 19  # 2T − 1 antidiagonals


class TestValidation:
    def test_bad_start_rejected(self):
        sim = GmxTbArraySim(tile_size=4)
        with pytest.raises(ValueError):
            sim.simulate("AC", "AC", [1, 1], [1, 1], (3, 3))

    def test_oversized_chunk_rejected(self):
        sim = GmxTbArraySim(tile_size=4)
        with pytest.raises(ValueError):
            sim.simulate("ACGTA", "AC", [1] * 5, [1, 1], (4, 1))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GmxTbArraySim(tile_size=1)
        with pytest.raises(ValueError):
            GmxTbArraySim(tile_size=8, stages=0)
