"""Tests for the GMX-AC microarchitecture model (repro.hw.gmx_ac)."""

import pytest

from repro.hw.gmx_ac import GmxAcModel


class TestStructure:
    def test_cell_count_quadratic(self):
        assert GmxAcModel(tile_size=32).cell_count == 1024
        assert GmxAcModel(tile_size=16).cell_count == 256

    def test_cell_has_two_delta_modules(self):
        budget = GmxAcModel(tile_size=8).cell_budget()
        # Two GMXΔ modules contribute 2 × (2 OR + 3 AND + 3 NOT).
        assert budget.gates["or2"] >= 4
        assert budget.gates["and2"] >= 6

    def test_throughput_is_t_squared(self):
        """GMX computes 1024 DP elements per instruction at T = 32 (§7)."""
        assert GmxAcModel(tile_size=32).throughput_elements_per_cycle == 1024

    def test_small_tile_rejected(self):
        with pytest.raises(ValueError):
            GmxAcModel(tile_size=1)


class TestTiming:
    def test_critical_path_crosses_2t_minus_1_cells(self):
        """§6.3: the longest path traverses 2T − 1 compute cells."""
        assert GmxAcModel(tile_size=32).critical_path_cells == 63

    def test_paper_anchor_two_cycles_at_1ghz(self):
        """The paper's T = 32 design runs GMX-AC in 2 cycles at 1 GHz."""
        assert GmxAcModel(tile_size=32).latency_cycles(1.0) == 2

    def test_latency_grows_linearly_not_quadratically(self):
        """§6.3: latency is linear in T while throughput is quadratic."""
        small = GmxAcModel(tile_size=16).critical_path_ns
        large = GmxAcModel(tile_size=64).critical_path_ns
        assert 3.5 < large / small < 4.5

    def test_segmentation_balances_stages(self):
        plan = GmxAcModel(tile_size=32).segment(2)
        assert plan.stages == 2
        assert max(plan.stage_delays_ns) - min(plan.stage_delays_ns) <= 0.032

    def test_segmentation_registers_cost_4t_bits_per_boundary(self):
        plan = GmxAcModel(tile_size=32).segment(3)
        assert plan.register_bits == 2 * 4 * 32

    def test_more_stages_higher_frequency(self):
        model = GmxAcModel(tile_size=32)
        assert (
            model.segment(4).max_frequency_ghz
            > model.segment(1).max_frequency_ghz
        )

    def test_unreachable_frequency_rejected(self):
        with pytest.raises(ValueError):
            GmxAcModel(tile_size=8, cell_delay_ns=10.0).stages_for_frequency(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            GmxAcModel(tile_size=8).segment(0)
        with pytest.raises(ValueError):
            GmxAcModel(tile_size=8).stages_for_frequency(0)
        with pytest.raises(ValueError):
            GmxAcModel(tile_size=8, cell_delay_ns=0)
