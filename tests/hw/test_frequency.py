"""Tests for the design-space sweep (repro.hw.frequency)."""

import pytest

from repro.hw.frequency import design_point, sweep_tile_sizes


class TestDesignPoint:
    def test_paper_design_point(self):
        """T = 32 @ 1 GHz: 2-cycle AC, 6-cycle TB, 1024 peak GCUPS."""
        point = design_point(32, 1.0)
        assert point.ac_stages == 2
        assert point.tb_stages == 6
        assert point.peak_gcups == pytest.approx(1024.0)
        assert point.area_mm2 == pytest.approx(0.0216)

    def test_gcups_per_area(self):
        point = design_point(32)
        assert point.gcups_per_mm2 == pytest.approx(1024.0 / 0.0216, rel=1e-6)


class TestSweep:
    def test_throughput_quadratic_latency_linear(self):
        """The §6.3 scaling argument across the sweep."""
        points = {p.tile_size: p for p in sweep_tile_sizes((8, 16, 32, 64))}
        assert (
            points[64].elements_per_instruction
            == 4 * points[32].elements_per_instruction
        )
        assert points[64].ac_stages <= 2.5 * points[32].ac_stages

    def test_monotone_area(self):
        points = sweep_tile_sizes((4, 8, 16, 32, 64))
        areas = [p.area_mm2 for p in points]
        assert areas == sorted(areas)

    def test_efficiency_improves_with_t(self):
        """Bigger tiles amortise the fixed register cost: GCUPS/mm² rises."""
        points = sweep_tile_sizes((8, 32))
        assert points[1].gcups_per_mm2 > points[0].gcups_per_mm2
