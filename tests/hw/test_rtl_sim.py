"""Tests for the gate-level GMX-AC array simulation (repro.hw.rtl_sim)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tile import boundary_deltas, compute_tile_reference
from repro.hw.gmx_ac import GmxAcModel, StuckAtFault, sample_stuck_faults
from repro.hw.rtl_sim import GmxAcArraySim

dna = st.text(alphabet="ACGT", min_size=1, max_size=12)
deltas = st.lists(st.sampled_from([-1, 0, 1]), min_size=12, max_size=12)


class TestFunctionalEquivalence:
    @given(dna, dna)
    @settings(max_examples=80, deadline=None)
    def test_combinational_array_matches_reference(self, pattern, text):
        sim = GmxAcArraySim(tile_size=12, stages=1)
        simulated = sim.simulate(
            pattern, text,
            boundary_deltas(len(pattern)), boundary_deltas(len(text)),
        )
        reference = compute_tile_reference(
            pattern, text,
            boundary_deltas(len(pattern)), boundary_deltas(len(text)),
            tile_size=12,
        )
        assert simulated.result == reference

    @pytest.mark.parametrize("stages", [1, 2, 3, 5, 23])
    def test_pipelining_never_changes_values(self, stages):
        """The RTL invariant: segmentation is purely a timing transform."""
        pattern, text = "ACGTACGTACGT", "TTGCACGTAAGC"
        reference = GmxAcArraySim(tile_size=12, stages=1).simulate(
            pattern, text, boundary_deltas(12), boundary_deltas(12)
        )
        pipelined = GmxAcArraySim(tile_size=12, stages=stages).simulate(
            pattern, text, boundary_deltas(12), boundary_deltas(12)
        )
        assert pipelined.result == reference.result

    @given(dna, dna, deltas, deltas)
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_edge_vectors(self, pattern, text, dv, dh):
        """Interior tiles: the array must be exact for any legal inputs."""
        dv_in = dv[: len(pattern)]
        dh_in = dh[: len(text)]
        sim = GmxAcArraySim(tile_size=12, stages=2)
        simulated = sim.simulate(pattern, text, dv_in, dh_in)
        reference = compute_tile_reference(
            pattern, text, dv_in, dh_in, tile_size=12
        )
        assert simulated.result == reference


class TestTiming:
    def test_latency_equals_stage_count(self):
        sim = GmxAcArraySim(tile_size=8, stages=3)
        result = sim.simulate(
            "ACGTACGT", "ACGTACGT", boundary_deltas(8), boundary_deltas(8)
        )
        assert result.latency_cycles == 3

    def test_stream_retires_one_tile_per_cycle(self):
        """Pipelined throughput: S + k − 1 cycles for k tiles (peak GCUPS)."""
        sim = GmxAcArraySim(tile_size=4, stages=2)
        tiles = [
            ("ACGT", "ACGA", boundary_deltas(4), boundary_deltas(4))
            for _ in range(10)
        ]
        results, cycles = sim.simulate_stream(tiles)
        assert len(results) == 10
        assert cycles == 2 + 9

    def test_stage_assignment_is_monotone(self):
        sim = GmxAcArraySim(tile_size=16, stages=4)
        previous = 0
        for diagonal in range(31):
            stage = sim.stage_of(diagonal, 0) if diagonal < 16 else sim.stage_of(
                15, diagonal - 15
            )
            assert stage >= previous
            previous = stage

    def test_paper_design_point_geometry(self):
        """The executable array at the paper's 2-stage T=32 configuration
        agrees with the cost model's plan."""
        model = GmxAcModel(tile_size=32)
        sim = GmxAcArraySim(tile_size=32, stages=model.stages_for_frequency(1.0))
        assert sim.matches_cost_model(model)
        assert sim.stages == 2


class TestValidation:
    def test_oversized_chunk_rejected(self):
        sim = GmxAcArraySim(tile_size=4)
        with pytest.raises(ValueError):
            sim.simulate("ACGTA", "ACGT", [1] * 5, [1] * 4)

    def test_mismatched_edges_rejected(self):
        sim = GmxAcArraySim(tile_size=4)
        with pytest.raises(ValueError):
            sim.simulate("ACGT", "ACGT", [1] * 3, [1] * 4)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GmxAcArraySim(tile_size=1)
        with pytest.raises(ValueError):
            GmxAcArraySim(tile_size=8, stages=0)


class TestStuckAtFaults:
    """The gate-level fault hook of the resilience campaign's hardware layer."""

    def _healthy(self, pattern, text):
        return GmxAcArraySim(tile_size=12, stages=1).simulate(
            pattern, text, boundary_deltas(len(pattern)), boundary_deltas(len(text))
        )

    def test_sampling_is_deterministic_and_distinct(self):
        a = sample_stuck_faults(tile_size=8, count=10, seed=5)
        b = sample_stuck_faults(tile_size=8, count=10, seed=5)
        assert a == b
        assert len(set(a)) == 10
        assert sample_stuck_faults(8, 10, seed=6) != a

    def test_fault_sites_inside_the_array(self):
        for fault in sample_stuck_faults(tile_size=8, count=50, seed=1):
            assert 0 <= fault.row < 8
            assert 0 <= fault.col < 8
            assert fault.net in ("dv", "dh")
            assert fault.bit in (0, 1)
            assert fault.value in (0, 1)

    def test_invalid_fault_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault(row=0, col=0, net="dq", bit=0, value=0)
        with pytest.raises(ValueError):
            StuckAtFault(row=0, col=0, net="dv", bit=2, value=0)
        with pytest.raises(ValueError):
            StuckAtFault(row=0, col=0, net="dv", bit=0, value=3)

    def test_fault_outside_array_rejected(self):
        fault = StuckAtFault(row=12, col=0, net="dv", bit=0, value=1)
        with pytest.raises(ValueError):
            GmxAcArraySim(tile_size=12, faults=[fault])

    def test_faulty_array_diverges_from_reference(self):
        # A stuck-at-1 on the "-1" plane of a last-column cell whose healthy
        # output is 0 turns that dv_out into -1 -- the divergence the
        # gate-level equivalence check (and the resilience cross-check)
        # detects.  (The last column's dv outputs ARE dv_out; faults in
        # interior columns can be overwritten by healthy cells downstream.)
        pattern, text = "ACGTACGTACGT", "TTGCACGTAAGC"
        healthy = self._healthy(pattern, text)
        assert healthy.result.dv_out[6] == 0
        fault = StuckAtFault(row=6, col=11, net="dv", bit=1, value=1)
        faulty = GmxAcArraySim(tile_size=12, stages=1, faults=[fault]).simulate(
            pattern, text, boundary_deltas(12), boundary_deltas(12)
        )
        assert faulty.result != healthy.result
        assert faulty.result.dv_out[6] == -1

    def test_fault_can_surface_as_illegal_encoding(self):
        # Sticking the "+1" plane of a cell that healthily outputs -1
        # yields the unreachable (1, 1) pattern: the array reports the
        # corruption loudly instead of decoding garbage.
        from repro.core.delta import DeltaEncodingError

        pattern = text = "ACGTACGTACGT"
        fault = StuckAtFault(row=5, col=11, net="dv", bit=0, value=1)
        sim = GmxAcArraySim(tile_size=12, stages=1, faults=[fault])
        with pytest.raises(DeltaEncodingError):
            sim.simulate(pattern, text, boundary_deltas(12), boundary_deltas(12))

    def test_healthy_fault_list_is_identity(self):
        pattern, text = "ACGTACGTACGT", "TTGCACGTAAGC"
        healthy = self._healthy(pattern, text)
        # A stuck level the cell already produces is masked: simulate with
        # an empty fault list against an explicit empty tuple.
        unfaulted = GmxAcArraySim(tile_size=12, stages=1, faults=()).simulate(
            pattern, text, boundary_deltas(12), boundary_deltas(12)
        )
        assert unfaulted.result == healthy.result
