"""Tests for the energy model (repro.hw.energy)."""

import pytest

from repro.align.base import KernelStats
from repro.hw.energy import EnergyProfile, estimate_energy
from repro.sim.core_model import estimate_kernel
from repro.sim.cost_model import expected_distance, predict_bpm, predict_full_gmx
from repro.sim.soc import RTL_INORDER


def stats_with(**counts) -> KernelStats:
    stats = KernelStats()
    for kind, count in counts.items():
        stats.add_instr(kind, count)
    return stats


class TestProfile:
    def test_dynamic_energy_sums_classes(self):
        profile = EnergyProfile()
        stats = stats_with(int_alu=100, load=10)
        expected = 100 * 8.0 + 10 * 25.0
        assert profile.dynamic_energy_pj(stats) == pytest.approx(expected)

    def test_unknown_class_rejected(self):
        profile = EnergyProfile(instruction_energy_pj={"int_alu": 8.0})
        stats = stats_with(load=1)
        with pytest.raises(ValueError):
            profile.dynamic_energy_pj(stats)

    def test_gmx_instruction_energy_anchored_on_module_power(self):
        """gmx.v/gmx.h energy = GMX-AC power share × its 2-cycle occupancy."""
        profile = EnergyProfile()
        ac_power = 8.47 * 0.008 / 0.0216
        assert profile.instruction_energy_pj["gmx"] == pytest.approx(
            ac_power * 2
        )


class TestEstimate:
    def test_static_energy_scales_with_cycles(self):
        stats = stats_with(int_alu=10)
        short = estimate_energy(stats, cycles=1_000)
        long = estimate_energy(stats, cycles=10_000)
        assert long.static_pj == pytest.approx(10 * short.static_pj)
        assert long.dynamic_pj == short.dynamic_pj

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            estimate_energy(stats_with(int_alu=1), cycles=-1)

    def test_units(self):
        stats = stats_with(int_alu=1000)  # 8000 pJ dynamic
        estimate = estimate_energy(stats, cycles=0)
        assert estimate.total_pj == pytest.approx(8000)
        assert estimate.nj_per_alignment == pytest.approx(8.0)


class TestEfficiencyClaim:
    def test_gmx_far_more_energy_efficient_than_bpm(self):
        """The §7.3 efficiency argument, quantified: per DP cell, the GMX
        kernel spends at least an order of magnitude less energy."""
        length = 2_000
        distance = expected_distance(length, 0.15)
        results = {}
        for label, predictor in (
            ("gmx", predict_full_gmx),
            ("bpm", predict_bpm),
        ):
            stats = predictor(
                length, length, traceback=True, distance=distance
            )
            timing = estimate_kernel(stats, RTL_INORDER.core, RTL_INORDER.memory)
            results[label] = estimate_energy(stats, timing.cycles)
        assert results["gmx"].pj_per_cell < results["bpm"].pj_per_cell / 10
        assert results["gmx"].gcups_per_watt > results["bpm"].gcups_per_watt * 10
