"""Tests for DNA alphabet utilities (repro.core.alphabet)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alphabet import (
    AlphabetError,
    decode_2bit,
    encode_2bit,
    reverse_complement,
    validate_dna,
)

dna_strategy = st.text(alphabet="ACGT", min_size=0, max_size=100)


class TestValidation:
    def test_accepts_valid(self):
        assert validate_dna("ACGTACGT") == "ACGTACGT"

    def test_rejects_lowercase(self):
        with pytest.raises(AlphabetError):
            validate_dna("acgt")

    def test_rejects_n_by_default(self):
        with pytest.raises(AlphabetError):
            validate_dna("ACGN")

    def test_allows_n_when_asked(self):
        assert validate_dna("ACGN", allow_n=True) == "ACGN"

    def test_error_reports_position(self):
        with pytest.raises(AlphabetError, match="position 2"):
            validate_dna("ACxGT")


class TestEncoding:
    @given(dna_strategy)
    def test_roundtrip(self, sequence):
        assert decode_2bit(encode_2bit(sequence)) == sequence

    def test_codes(self):
        assert encode_2bit("ACGT") == [0, 1, 2, 3]

    def test_encode_rejects_n(self):
        with pytest.raises(AlphabetError):
            encode_2bit("N")

    def test_decode_rejects_bad_code(self):
        with pytest.raises(AlphabetError):
            decode_2bit([4])


class TestReverseComplement:
    def test_known(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAC") == "GTT"
        assert reverse_complement("N") == "N"

    @given(dna_strategy)
    def test_involution(self, sequence):
        assert reverse_complement(reverse_complement(sequence)) == sequence
