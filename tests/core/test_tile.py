"""Tests for GMX-Tile computation (repro.core.tile)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scalar_edit_matrix
from repro.core.tile import (
    TileOpCounter,
    TileShapeError,
    boundary_deltas,
    build_peq,
    compute_tile,
    compute_tile_interior,
    compute_tile_reference,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=16)


def full_matrix_tile(pattern, text, tile_size=16, kernel=compute_tile):
    """Compute the whole DP matrix as a single tile."""
    return kernel(
        pattern,
        text,
        boundary_deltas(len(pattern)),
        boundary_deltas(len(text)),
        tile_size=tile_size,
    )


class TestReferenceKernel:
    @given(dna, dna)
    @settings(max_examples=150)
    def test_edges_match_scalar_dp(self, pattern, text):
        matrix = scalar_edit_matrix(pattern, text)
        n, m = len(pattern), len(text)
        result = full_matrix_tile(pattern, text, kernel=compute_tile_reference)
        assert result.dv_out == tuple(
            matrix[i][m] - matrix[i - 1][m] for i in range(1, n + 1)
        )
        assert result.dh_out == tuple(
            matrix[n][j] - matrix[n][j - 1] for j in range(1, m + 1)
        )

    def test_paper_example(self):
        """Figure 6: GCAT vs GATT, ΔH bottom row = [-1, 0, 0, -1]... checked
        via the distance instead (deltas sum to D[n][m] − n)."""
        result = full_matrix_tile("GATT", "GCAT", tile_size=4)
        distance = 4 + sum(result.dh_out)
        assert distance == 2


class TestBitParallelKernel:
    @given(dna, dna)
    @settings(max_examples=200)
    def test_matches_reference(self, pattern, text):
        reference = full_matrix_tile(pattern, text, kernel=compute_tile_reference)
        fast = full_matrix_tile(pattern, text, kernel=compute_tile)
        assert fast == reference

    @given(
        dna,
        dna,
        st.lists(st.sampled_from([-1, 0, 1]), min_size=16, max_size=16),
        st.lists(st.sampled_from([-1, 0, 1]), min_size=16, max_size=16),
    )
    @settings(max_examples=150)
    def test_matches_reference_on_arbitrary_edges(self, pattern, text, dv, dh):
        """Interior tiles see arbitrary edge vectors, not just boundaries."""
        dv_in = dv[: len(pattern)]
        dh_in = dh[: len(text)]
        reference = compute_tile_reference(pattern, text, dv_in, dh_in, tile_size=16)
        fast = compute_tile(pattern, text, dv_in, dh_in, tile_size=16)
        assert fast == reference

    def test_peq_reuse_gives_same_result(self):
        pattern, text = "ACGTACGT", "ACGGACGA"
        peq = build_peq(pattern)
        with_peq = compute_tile(
            pattern, text, boundary_deltas(8), boundary_deltas(8), peq=peq
        )
        without = compute_tile(
            pattern, text, boundary_deltas(8), boundary_deltas(8)
        )
        assert with_peq == without


class TestInterior:
    @given(dna, dna)
    @settings(max_examples=80)
    def test_interior_matches_scalar_dp(self, pattern, text):
        matrix = scalar_edit_matrix(pattern, text)
        interior = compute_tile_interior(
            pattern,
            text,
            boundary_deltas(len(pattern)),
            boundary_deltas(len(text)),
            tile_size=16,
        )
        for i in range(len(pattern)):
            for j in range(len(text)):
                assert interior.dv[i][j] == matrix[i + 1][j + 1] - matrix[i][j + 1]
                assert interior.dh[i][j] == matrix[i + 1][j + 1] - matrix[i + 1][j]


class TestShapeChecking:
    def test_empty_chunks_rejected(self):
        with pytest.raises(TileShapeError):
            compute_tile("", "A", [], [1])

    def test_oversized_chunk_rejected(self):
        with pytest.raises(TileShapeError):
            compute_tile("A" * 33, "A", boundary_deltas(33), [1], tile_size=32)

    def test_mismatched_dv_length_rejected(self):
        with pytest.raises(TileShapeError):
            compute_tile("AC", "A", [1], [1])

    def test_mismatched_dh_length_rejected(self):
        with pytest.raises(TileShapeError):
            compute_tile("AC", "A", [1, 1], [1, 1])


class TestBoundary:
    def test_boundary_is_all_plus_one(self):
        assert boundary_deltas(4) == (1, 1, 1, 1)


class TestPeq:
    def test_bits_match_characters(self):
        peq = build_peq("ACGA")
        assert peq["A"] == 0b1001
        assert peq["C"] == 0b0010
        assert peq["G"] == 0b0100
        assert "T" not in peq


class TestOpCounter:
    def test_paper_cost_accounting(self):
        """§4.2: 12 bit-ops per element, 4T bits stored per tile edge pair."""
        counter = TileOpCounter()
        counter.record(32, 32)
        assert counter.tiles == 1
        assert counter.dp_elements == 1024
        assert counter.bitops == 12 * 1024
        assert counter.edge_bits_stored == 2 * 64

    def test_shape_histogram(self):
        counter = TileOpCounter()
        counter.record(32, 32)
        counter.record(32, 32)
        counter.record(8, 32)
        assert counter.per_shape == {(32, 32): 2, (8, 32): 1}
