"""Differential fuzzing of the tile kernels against independent references.

Three implementations of the same mathematics are cross-checked on seeded
random inputs (every case is deterministic and replayable from its seed):

* :func:`repro.core.tile.compute_tile` — the bit-parallel production kernel;
* :func:`repro.core.tile.compute_tile_reference` — the cell-by-cell GMXΔ
  evaluation mirroring the hardware array;
* the scalar edit-distance DP from ``tests/conftest.py`` (library-independent)
  and the Needleman–Wunsch baseline aligner.

Coverage axes: random partial tiles (R, C ≤ T with arbitrary Δ inputs),
DP-boundary tiles checked edge-by-edge against the scalar matrix, and
whole alignments over lengths 1..3T under all three sequencing error
profiles (Illumina, PacBio HiFi, ONT).  Well over 200 cases run in the
default suite; an extended sweep rides in the ``slow`` marker.

Every fuzzed alignment also records its retired instruction stream and
runs it through the static program verifier (:mod:`repro.analysis`), so
the dataflow contracts (CSR initialisation, edge provenance, tb-after-
tile, no dead writes) are checked on thousands of distinct programs.
"""

import random

import pytest

from repro.align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
from repro.analysis import verify_trace
from repro.baselines import NeedlemanWunschAligner
from repro.core.tile import (
    DEFAULT_TILE_SIZE,
    boundary_deltas,
    compute_tile,
    compute_tile_reference,
)
from repro.workloads.profiles import (
    ILLUMINA,
    ONT,
    PACBIO_HIFI,
    generate_profiled_pair,
)

from conftest import random_dna, scalar_edit_distance, scalar_edit_matrix

T = DEFAULT_TILE_SIZE

PROFILES = pytest.mark.parametrize(
    "profile", (ILLUMINA, PACBIO_HIFI, ONT), ids=lambda p: p.name
)


def _random_deltas(count: int, rng: random.Random):
    return [rng.choice((-1, 0, 1)) for _ in range(count)]


class TestTileKernelsAgree:
    """compute_tile vs compute_tile_reference on arbitrary tile inputs."""

    @pytest.mark.parametrize("seed", range(120))
    def test_random_partial_tiles(self, seed):
        rng = random.Random(0xD1F + seed)
        rows = rng.randint(1, T)
        cols = rng.randint(1, T)
        pattern = random_dna(rows, rng)
        text = random_dna(cols, rng)
        dv_in = _random_deltas(rows, rng)
        dh_in = _random_deltas(cols, rng)
        fast = compute_tile(pattern, text, dv_in, dh_in)
        reference = compute_tile_reference(pattern, text, dv_in, dh_in)
        assert fast == reference, (
            f"kernels disagree: seed={seed} shape=({rows},{cols})"
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_degenerate_shapes(self, seed):
        """1×C and R×1 slivers — the partial-tile masking corners."""
        rng = random.Random(0x51B + seed)
        for rows, cols in ((1, rng.randint(1, T)), (rng.randint(1, T), 1)):
            pattern = random_dna(rows, rng)
            text = random_dna(cols, rng)
            dv_in = _random_deltas(rows, rng)
            dh_in = _random_deltas(cols, rng)
            assert compute_tile(
                pattern, text, dv_in, dh_in
            ) == compute_tile_reference(pattern, text, dv_in, dh_in)


class TestTileEdgesMatchScalarDp:
    """Boundary tiles reconstructed against the independent scalar matrix."""

    @pytest.mark.parametrize("seed", range(40))
    def test_boundary_tile_edges(self, seed):
        rng = random.Random(0xDB + seed)
        rows = rng.randint(1, T)
        cols = rng.randint(1, T)
        pattern = random_dna(rows, rng)
        text = random_dna(cols, rng)
        tile = compute_tile(
            pattern, text, boundary_deltas(rows), boundary_deltas(cols)
        )
        matrix = scalar_edit_matrix(pattern, text)
        # Right edge: D[i+1][C] = C + Σ dv_out[..i]; bottom: D[R][j+1]
        # = R + Σ dh_out[..j].  (D[0][C] = C and D[R][0] = R on the
        # boundary of the full DP matrix.)
        running = cols
        for i, delta in enumerate(tile.dv_out):
            running += delta
            assert running == matrix[i + 1][cols], f"right edge row {i}"
        running = rows
        for j, delta in enumerate(tile.dh_out):
            running += delta
            assert running == matrix[rows][j + 1], f"bottom edge col {j}"


class TestAlignersMatchScalarDp:
    """Whole alignments: Full(GMX) vs NW baseline vs the scalar reference."""

    @PROFILES
    @pytest.mark.parametrize("seed", range(30))
    def test_profiled_pairs_three_way(self, profile, seed):
        rng = random.Random(f"diff:{profile.name}:{seed}")
        length = rng.randint(1, 3 * T)
        pair = generate_profiled_pair(length, profile, rng)
        expected = scalar_edit_distance(pair.pattern, pair.text)
        sink = []
        gmx = FullGmxAligner(trace_sink=sink).align(pair.pattern, pair.text)
        assert gmx.score == expected
        assert gmx.alignment is not None
        gmx.alignment.validate()
        for events in sink:
            assert verify_trace(events, tile_size=T) == []
        nw = NeedlemanWunschAligner().distance(pair.pattern, pair.text)
        assert nw == expected

    @PROFILES
    @pytest.mark.parametrize(
        "length", (1, T - 1, T, T + 1, 2 * T - 1, 2 * T, 2 * T + 1, 3 * T)
    )
    def test_partial_tile_boundary_lengths(self, profile, length):
        """Lengths straddling tile boundaries — the masking hot spots."""
        rng = random.Random(f"boundary:{profile.name}:{length}")
        pair = generate_profiled_pair(length, profile, rng)
        expected = scalar_edit_distance(pair.pattern, pair.text)
        assert FullGmxAligner().distance(pair.pattern, pair.text) == expected


class TestStreamsVerifyClean:
    """Every GMX aligner's retired stream passes the program verifier."""

    @pytest.mark.parametrize("seed", range(8))
    def test_banded_streams(self, seed):
        rng = random.Random(f"banded-stream:{seed}")
        pair = generate_profiled_pair(rng.randint(T, 3 * T), PACBIO_HIFI, rng)
        sink = []
        aligner = BandedGmxAligner(tile_size=8, trace_sink=sink)
        aligner.align(pair.pattern, pair.text)
        assert sink
        for events in sink:  # includes aborted auto-widen passes
            assert verify_trace(events, tile_size=8) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_windowed_streams(self, seed):
        rng = random.Random(f"windowed-stream:{seed}")
        pair = generate_profiled_pair(rng.randint(T, 3 * T), ONT, rng)
        sink = []
        aligner = WindowedGmxAligner(tile_size=8, trace_sink=sink)
        aligner.align(pair.pattern, pair.text)
        assert len(sink) >= 1  # one program per window
        for events in sink:
            assert verify_trace(events, tile_size=8) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_fused_full_streams(self, seed):
        rng = random.Random(f"fused-stream:{seed}")
        pair = generate_profiled_pair(rng.randint(1, 2 * T), ILLUMINA, rng)
        sink = []
        aligner = FullGmxAligner(fused=True, trace_sink=sink)
        aligner.align(pair.pattern, pair.text)
        for events in sink:
            assert verify_trace(events, tile_size=T) == []
            # ...but a single-write-port target must reject the same stream.
            assert any(
                d.code == "GMX007"
                for d in verify_trace(events, tile_size=T, ports=1)
            )


@pytest.mark.slow
class TestExtendedSweep:
    """Longer fuzz sweep for scheduled jobs (`pytest -m slow`)."""

    @PROFILES
    @pytest.mark.parametrize("seed", range(40))
    def test_profiled_pairs_to_4t(self, profile, seed):
        rng = random.Random(f"ext:{profile.name}:{seed}")
        length = rng.randint(1, 4 * T)
        pair = generate_profiled_pair(length, profile, rng)
        expected = scalar_edit_distance(pair.pattern, pair.text)
        sink = []
        result = FullGmxAligner(trace_sink=sink).align(pair.pattern, pair.text)
        assert result.score == expected
        result.alignment.validate()
        for events in sink:
            assert verify_trace(events, tile_size=T) == []

    @pytest.mark.parametrize("seed", range(80))
    def test_random_tiles_mixed_alphabet(self, seed):
        """Tiles over a non-DNA alphabet — peq-map robustness."""
        rng = random.Random(0xA1F + seed)
        alphabet = "ACGTN-"
        rows = rng.randint(1, T)
        cols = rng.randint(1, T)
        pattern = "".join(rng.choice(alphabet) for _ in range(rows))
        text = "".join(rng.choice(alphabet) for _ in range(cols))
        dv_in = _random_deltas(rows, rng)
        dh_in = _random_deltas(cols, rng)
        assert compute_tile(
            pattern, text, dv_in, dh_in
        ) == compute_tile_reference(pattern, text, dv_in, dh_in)
