"""Tests for bit-vector helpers (repro.core.bitvec)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitvec import (
    bits_of,
    from_bits,
    get_bit,
    mask,
    merge_plus_minus,
    pack_deltas,
    popcount,
    set_bit,
    split_plus_minus,
    unpack_deltas,
)
from repro.core.delta import DeltaEncodingError

deltas_strategy = st.lists(
    st.sampled_from([-1, 0, 1]), min_size=1, max_size=64
)


class TestPrimitives:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(64) == (1 << 64) - 1

    def test_mask_negative(self):
        with pytest.raises(ValueError):
            mask(-1)

    def test_get_set_bit(self):
        value = 0b1010
        assert get_bit(value, 1) == 1
        assert get_bit(value, 0) == 0
        assert set_bit(value, 0, 1) == 0b1011
        assert set_bit(value, 3, 0) == 0b0010

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(mask(100)) == 100

    def test_bits_roundtrip(self):
        value = 0b110101
        assert from_bits(bits_of(value, 6)) == value


class TestDeltaPacking:
    def test_known_packing(self):
        # +1 -> 0b01 in field 0; -1 -> 0b10 in field 1; 0 -> 0b00 in field 2
        assert pack_deltas([1, -1, 0]) == 0b00_10_01

    def test_unpack_known(self):
        assert unpack_deltas(0b00_10_01, 3) == [1, -1, 0]

    def test_unpack_rejects_illegal_field(self):
        with pytest.raises(DeltaEncodingError):
            unpack_deltas(0b11, 1)

    @given(deltas_strategy)
    def test_roundtrip(self, deltas):
        assert unpack_deltas(pack_deltas(deltas), len(deltas)) == deltas

    @given(deltas_strategy)
    def test_register_width(self, deltas):
        """A T-element vector fits in 2T bits (the paper's register sizing)."""
        assert pack_deltas(deltas) < (1 << (2 * len(deltas)))


class TestPlusMinusMasks:
    @given(deltas_strategy)
    def test_roundtrip(self, deltas):
        plus, minus = split_plus_minus(deltas)
        assert merge_plus_minus(plus, minus, len(deltas)) == deltas

    @given(deltas_strategy)
    def test_masks_disjoint(self, deltas):
        plus, minus = split_plus_minus(deltas)
        assert plus & minus == 0

    def test_merge_rejects_overlap(self):
        with pytest.raises(DeltaEncodingError):
            merge_plus_minus(0b1, 0b1, 1)

    def test_split_rejects_bad_value(self):
        with pytest.raises(DeltaEncodingError):
            split_plus_minus([2])
