"""Directed ISA conformance vectors for the GMX extension.

Modelled after riscv-tests style directed testing: each case pins down one
architectural behaviour with hand-computed expected values (not computed
by the implementation under test).  T = 4 keeps the vectors checkable by
hand; the tile-size-independence of the semantics is covered elsewhere.

The directed vectors are complemented by randomized CSR-state fuzzing
(``TestRandomizedCsrState``): seeded sequences of ``csrw`` updates and
``gmx.v``/``gmx.h``/``gmx.vh`` executions, each checked against
:func:`repro.core.tile.compute_tile_reference` on the architectural state
in force at that instruction — conformance under state *re-use*, partial
chunks, and interleaved pattern/text rewrites (the peq-cache hazard).
"""

import random

import pytest

from repro.core.isa import GmxIsa, encode_pos, pack_vector, unpack_vector
from repro.core.tile import compute_tile_reference
from repro.core.traceback import NextTile

T = 4
PLUS4 = pack_vector([1, 1, 1, 1])


def fresh_isa(pattern: str, text: str) -> GmxIsa:
    isa = GmxIsa(tile_size=T)
    isa.csrw("gmx_pattern", pattern)
    isa.csrw("gmx_text", text)
    return isa


class TestGmxVH:
    def test_all_match_tile(self):
        """Identical chunks: the DP matrix is D[i][j] = |i − j|.

        Right edge (j = 4): Δv[i][4] = |i−4| − |i−1−4| = −1 for i ≤ 4.
        Bottom edge (i = 4): Δh[4][j] = |4−j| − |4−j+1| = −1.
        """
        isa = fresh_isa("ACGT", "ACGT")
        assert unpack_vector(isa.gmx_v(PLUS4, PLUS4), 4) == [-1, -1, -1, -1]
        assert unpack_vector(isa.gmx_h(PLUS4, PLUS4), 4) == [-1, -1, -1, -1]

    def test_all_mismatch_tile(self):
        """Disjoint alphabets: D[i][j] = max(i, j).

        Right edge: Δv[i][4] = max(i,4) − max(i−1,4) = 0 (i ≤ 4).
        Bottom edge: Δh[4][j] = 0 likewise.
        """
        isa = fresh_isa("AAAA", "TTTT")
        assert unpack_vector(isa.gmx_v(PLUS4, PLUS4), 4) == [0, 0, 0, 0]
        assert unpack_vector(isa.gmx_h(PLUS4, PLUS4), 4) == [0, 0, 0, 0]

    def test_paper_figure6_tile(self):
        """Figure 6's 4×4 matrix: GCAT (pattern) vs GATT (text).

        Hand-computed D:      G  A  T  T
                        G  1  0  1  2  3
                        C  2  1  1  2  3
                        A  3  2  1  2  3
                        T  4  3  2  1  2
        Right edge Δv = D[i][4] − D[i−1][4] = [3−4... ] → [3,3,3,2] diffs:
        [3-4? no: col 4 values 3,3,3,2 minus 4? Δv uses vertical deltas:
        3−4=−1? — vertical: D[1][4]=3 vs D[0][4]=4 → −1; then 0, 0, −1.
        Bottom edge Δh: D[4][j] − D[4][j−1] over 4,3,2,1,2 → [−1,−1,−1,+1].
        """
        isa = fresh_isa("GCAT", "GATT")
        assert unpack_vector(isa.gmx_v(PLUS4, PLUS4), 4) == [-1, 0, 0, -1]
        assert unpack_vector(isa.gmx_h(PLUS4, PLUS4), 4) == [-1, -1, -1, 1]

    def test_zero_top_boundary_infix_semantics(self):
        """ΔH_in = 0 (free text prefix): an embedded match zeroes the
        bottom row wherever the pattern ends."""
        isa = fresh_isa("A", "TAAT")
        zero4 = pack_vector([0, 0, 0, 0])
        dh_out = unpack_vector(isa.gmx_h(pack_vector([1]), zero4), 4)
        # D[1][j] over j=0..4 with free top: 1,1,0,0,1 → Δh = [0,−1,0,+1]
        assert dh_out == [0, -1, 0, 1]

    def test_vh_equals_v_plus_h(self):
        isa = fresh_isa("GCAT", "GATT")
        dv, dh = isa.gmx_vh(PLUS4, PLUS4)
        assert dv == isa.gmx_v(PLUS4, PLUS4)
        assert dh == isa.gmx_h(PLUS4, PLUS4)


class TestGmxTb:
    def test_pure_match_traceback(self):
        isa = fresh_isa("ACGT", "ACGT")
        isa.csrw("gmx_pos", encode_pos(3, 3, T))
        result = isa.gmx_tb(PLUS4, PLUS4)
        assert result.ops == ("M", "M", "M", "M")
        assert result.next_tile is NextTile.DIAGONAL
        # gmx_lo holds antidiagonals 0..3; M encodes as 00, so with the
        # next-tile code 00 the registers are all-zero.
        assert isa.gmx_lo == 0
        assert (isa.gmx_hi >> (2 * (T - 1))) & 0b11 == NextTile.DIAGONAL.code

    def test_pure_mismatch_traceback(self):
        isa = fresh_isa("AAAA", "TTTT")
        isa.csrw("gmx_pos", encode_pos(3, 3, T))
        result = isa.gmx_tb(PLUS4, PLUS4)
        assert result.ops == ("X", "X", "X", "X")
        assert result.next_tile is NextTile.DIAGONAL
        # X encodes as 01; the walk hits antidiagonals 6, 4, 2, 0.
        # lo holds diags 0..3 (fields at bits 0,2,4,6): diag 0 and 2 → 0b010001.
        # hi holds diags 4..6 (fields at bits 0,2,4): diag 4 and 6 → 0b010001,
        # with the DIAGONAL next-tile code (00) in bits 7:6.
        assert isa.gmx_lo == 0b01_00_01
        assert isa.gmx_hi == 0b01_00_01

    def test_right_edge_start_updates_pos(self):
        """Entering on the right column mid-height."""
        isa = fresh_isa("ACGT", "ACGT")
        isa.csrw("gmx_pos", encode_pos(1, 3, T))  # right column, row 1
        result = isa.gmx_tb(PLUS4, PLUS4)
        # From (1,3): A≠T... pattern[1]=C vs text[3]=T mismatch; the walk
        # still exits through the top (row −1) after two diagonal steps.
        assert result.next_tile in (NextTile.UP, NextTile.DIAGONAL)
        # gmx_pos now encodes the next tile's entry cell.
        row, col = result.next_pos
        assert isa.gmx_pos == encode_pos(row, col, T)

    def test_deletion_column(self):
        """Pattern vs a single mismatching char: D ops up column 0."""
        isa = fresh_isa("AAAA", "C")
        isa.csrw("gmx_pos", encode_pos(3, 3, T))  # clamped to (3, 0)
        result = isa.gmx_tb(PLUS4, pack_vector([1]))
        assert result.ops.count("D") == 3
        assert result.ops[-1] == "X"  # cell (0,0) substitutes

    def test_tb_retires_one_instruction(self):
        isa = fresh_isa("ACGT", "ACGT")
        isa.csrw("gmx_pos", encode_pos(3, 3, T))
        isa.gmx_tb(PLUS4, PLUS4)
        assert isa.retired["gmx.tb"] == 1


class TestRandomizedCsrState:
    """Randomized gmx.v/gmx.h CSR-state sequences vs the tile reference."""

    DNA = "ACGT"

    def _random_chunk(self, rng, tile_size):
        return "".join(
            rng.choice(self.DNA) for _ in range(rng.randint(1, tile_size))
        )

    def _random_deltas(self, rng, count):
        return [rng.choice((-1, 0, 1)) for _ in range(count)]

    @pytest.mark.parametrize("seed", range(30))
    def test_random_instruction_sequences(self, seed):
        """Interleave CSR writes with tile instructions; every executed
        instruction must match the reference kernel on the live state."""
        rng = random.Random(f"isa-fuzz:{seed}")
        tile_size = rng.choice((4, 8, 32))
        isa = GmxIsa(tile_size=tile_size)
        isa.csrw("gmx_pattern", self._random_chunk(rng, tile_size))
        isa.csrw("gmx_text", self._random_chunk(rng, tile_size))
        executed = 0
        for _ in range(16):
            action = rng.choice(("pattern", "text", "v", "h", "vh"))
            if action == "pattern":
                isa.csrw("gmx_pattern", self._random_chunk(rng, tile_size))
                continue
            if action == "text":
                isa.csrw("gmx_text", self._random_chunk(rng, tile_size))
                continue
            pattern = isa.csrr("gmx_pattern")
            text = isa.csrr("gmx_text")
            dv_in = self._random_deltas(rng, len(pattern))
            dh_in = self._random_deltas(rng, len(text))
            expected = compute_tile_reference(
                pattern, text, dv_in, dh_in, tile_size=tile_size
            )
            rs1 = pack_vector(dv_in)
            rs2 = pack_vector(dh_in)
            if action == "v":
                out = unpack_vector(isa.gmx_v(rs1, rs2), len(pattern))
                assert out == list(expected.dv_out)
            elif action == "h":
                out = unpack_vector(isa.gmx_h(rs1, rs2), len(text))
                assert out == list(expected.dh_out)
            else:
                dv, dh = isa.gmx_vh(rs1, rs2)
                assert unpack_vector(dv, len(pattern)) == list(expected.dv_out)
                assert unpack_vector(dh, len(text)) == list(expected.dh_out)
            executed += 1
        assert (
            isa.retired["gmx.v"] + isa.retired["gmx.h"] + isa.retired["gmx.vh"]
            == executed
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_pattern_rewrite_invalidates_equality_masks(self, seed):
        """Back-to-back tiles with only the pattern CSR changing — the
        state hazard a stale peq cache would corrupt."""
        rng = random.Random(f"isa-peq:{seed}")
        isa = GmxIsa(tile_size=T)
        text = self._random_chunk(rng, T)
        isa.csrw("gmx_text", text)
        for _ in range(8):
            pattern = self._random_chunk(rng, T)
            isa.csrw("gmx_pattern", pattern)
            dv_in = self._random_deltas(rng, len(pattern))
            dh_in = self._random_deltas(rng, len(text))
            expected = compute_tile_reference(
                pattern, text, dv_in, dh_in, tile_size=T
            )
            result = isa.gmx_v(pack_vector(dv_in), pack_vector(dh_in))
            assert unpack_vector(result, len(pattern)) == list(expected.dv_out)

    @pytest.mark.parametrize("seed", range(10))
    def test_csr_roundtrip_and_retirement(self, seed):
        rng = random.Random(f"isa-csr:{seed}")
        isa = GmxIsa(tile_size=T)
        pattern = self._random_chunk(rng, T)
        text = self._random_chunk(rng, T)
        pos = encode_pos(rng.randrange(T), T - 1, T)
        isa.csrw("gmx_pattern", pattern)
        isa.csrw("gmx_text", text)
        isa.csrw("gmx_pos", pos)
        assert isa.csrr("gmx_pattern") == pattern
        assert isa.csrr("gmx_text") == text
        assert isa.csrr("gmx_pos") == pos
        assert isa.retired["csrw"] == 3
        assert isa.retired["csrr"] == 3


class TestRegisterWidths:
    def test_vector_outputs_fit_2t_bits(self):
        isa = fresh_isa("GCAT", "GATT")
        assert isa.gmx_v(PLUS4, PLUS4) < (1 << (2 * T))
        assert isa.gmx_h(PLUS4, PLUS4) < (1 << (2 * T))

    def test_lo_hi_fit_2t_bits(self):
        isa = fresh_isa("AAAA", "TTTT")
        isa.csrw("gmx_pos", encode_pos(3, 3, T))
        isa.gmx_tb(PLUS4, PLUS4)
        assert isa.gmx_lo < (1 << (2 * T))
        assert isa.gmx_hi < (1 << (2 * T))

    def test_pos_is_one_hot_2t(self):
        for row in range(T):
            image = encode_pos(row, T - 1, T)
            assert image < (1 << (2 * T))
            assert bin(image).count("1") == 1
