"""Tests for GMX instruction-word encodings (repro.core.encoding)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoding import (
    CSR_ADDRESSES,
    CUSTOM0_OPCODE,
    CsrInstruction,
    EncodingError,
    FUNCT3,
    SYSTEM_OPCODE,
    csr_address,
    csr_name,
    decode,
    decode_any,
    decode_program,
    encode,
    encode_csr,
)

registers = st.integers(min_value=0, max_value=31)
mnemonics = st.sampled_from(sorted(FUNCT3))


class TestEncode:
    def test_known_word(self):
        # gmx.v x10, x11, x12: funct7=0, rs2=12, rs1=11, funct3=0, rd=10.
        word = encode("gmx.v", 10, 11, 12)
        assert word == (12 << 20) | (11 << 15) | (10 << 7) | CUSTOM0_OPCODE

    def test_all_words_use_custom0(self):
        for mnemonic in FUNCT3:
            rd = 0 if mnemonic == "gmx.tb" else 5
            assert encode(mnemonic, rd, 6, 7) & 0x7F == CUSTOM0_OPCODE

    def test_distinct_funct3(self):
        assert len(set(FUNCT3.values())) == len(FUNCT3)

    def test_gmx_tb_forbids_destination(self):
        with pytest.raises(EncodingError):
            encode("gmx.tb", 5, 6, 7)
        assert encode("gmx.tb", 0, 6, 7)

    def test_register_bounds(self):
        with pytest.raises(EncodingError):
            encode("gmx.v", 32, 0, 0)
        with pytest.raises(EncodingError):
            encode("gmx.v", 0, -1, 0)

    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode("gmx.warp", 0, 0, 0)


class TestDecode:
    @given(mnemonics, registers, registers, registers)
    def test_roundtrip(self, mnemonic, rd, rs1, rs2):
        if mnemonic == "gmx.tb":
            rd = 0
        word = encode(mnemonic, rd, rs1, rs2)
        decoded = decode(word)
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2) == (
            mnemonic, rd, rs1, rs2,
        )

    def test_rejects_wrong_opcode(self):
        with pytest.raises(EncodingError):
            decode(0b0110011)  # base-ISA OP

    def test_rejects_unassigned_funct3(self):
        word = encode("gmx.v", 1, 2, 3) | (0b111 << 12)
        with pytest.raises(EncodingError):
            decode(word)

    def test_rejects_nonzero_funct7(self):
        word = encode("gmx.v", 1, 2, 3) | (1 << 25)
        with pytest.raises(EncodingError):
            decode(word)

    def test_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_disassembly_text(self):
        assert str(decode(encode("gmx.v", 10, 11, 12))) == "gmx.v x10, x11, x12"
        assert str(decode(encode("gmx.tb", 0, 4, 5))) == "gmx.tb x4, x5"


class TestCsrMap:
    def test_five_csrs_in_custom_space(self):
        assert len(CSR_ADDRESSES) == 5
        for address in CSR_ADDRESSES.values():
            assert 0x800 <= address <= 0x8FF  # custom R/W CSR space

    def test_roundtrip(self):
        for name, address in CSR_ADDRESSES.items():
            assert csr_address(name) == address
            assert csr_name(address) == name

    def test_unknowns_rejected(self):
        with pytest.raises(EncodingError):
            csr_address("gmx_bogus")
        with pytest.raises(EncodingError):
            csr_name(0x7FF)

    def test_matches_isa_model_registers(self):
        from repro.core.isa import CSR_NAMES

        assert set(CSR_ADDRESSES) == set(CSR_NAMES)


csr_mnemonics = st.sampled_from(["csrrw", "csrrs"])
csr_names_st = st.sampled_from(sorted(CSR_ADDRESSES))


class TestCsrWords:
    @given(csr_mnemonics, csr_names_st, registers, registers)
    def test_roundtrip(self, mnemonic, csr, rd, rs1):
        word = encode_csr(mnemonic, csr, rd, rs1)
        decoded = decode_any(word)
        assert isinstance(decoded, CsrInstruction)
        assert (decoded.mnemonic, decoded.csr, decoded.rd, decoded.rs1) == (
            mnemonic, csr, rd, rs1,
        )

    def test_uses_system_opcode(self):
        word = encode_csr("csrrw", "gmx_pattern", 0, 1)
        assert word & 0x7F == SYSTEM_OPCODE

    def test_csr_address_in_immediate_field(self):
        word = encode_csr("csrrw", "gmx_lo", 0, 1)
        assert (word >> 20) == CSR_ADDRESSES["gmx_lo"]

    def test_write_read_classification(self):
        assert decode_any(encode_csr("csrrw", "gmx_pos", 0, 1)).is_write
        assert decode_any(encode_csr("csrrs", "gmx_pos", 0, 3)).is_write
        assert not decode_any(encode_csr("csrrs", "gmx_pos", 5, 0)).is_write

    def test_rejects_non_gmx_csr(self):
        with pytest.raises(EncodingError):
            encode_csr("csrrw", "mstatus", 0, 1)

    def test_rejects_unknown_funct3(self):
        word = encode_csr("csrrw", "gmx_pattern", 0, 1) | (0b111 << 12)
        with pytest.raises(EncodingError):
            decode_any(word)

    def test_rejects_foreign_csr_address(self):
        word = (0x300 << 20) | (1 << 15) | (0b001 << 12) | SYSTEM_OPCODE
        with pytest.raises(EncodingError):
            decode_any(word)

    def test_disassembly_text(self):
        text = str(decode_any(encode_csr("csrrw", "gmx_text", 0, 2)))
        assert "csrrw" in text
        assert "gmx_text" in text


class TestDecodeAny:
    def test_dispatches_gmx_words(self):
        decoded = decode_any(encode("gmx.v", 5, 6, 7))
        assert decoded.mnemonic == "gmx.v"

    def test_rejects_foreign_opcode(self):
        with pytest.raises(EncodingError):
            decode_any(0b0110011)  # base-ISA OP

    def test_decode_program(self):
        words = [
            encode_csr("csrrw", "gmx_pattern", 0, 1),
            encode("gmx.v", 5, 0, 0),
        ]
        pattern_word, tile_word = decode_program(words)
        assert isinstance(pattern_word, CsrInstruction)
        assert tile_word.mnemonic == "gmx.v"
