"""Tests for alignment operations and CIGAR handling (repro.core.cigar)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cigar import (
    ALL_OPS,
    Alignment,
    AlignmentError,
    CODE_TO_OP,
    OP_TO_CODE,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
    cigar_to_ops,
    edit_cost,
    ops_to_cigar,
    relabel_diagonal_ops,
)

ops_strategy = st.lists(st.sampled_from(ALL_OPS), min_size=0, max_size=80)


class TestCigarRoundtrip:
    @given(ops_strategy)
    def test_roundtrip(self, ops):
        assert cigar_to_ops(ops_to_cigar(ops)) == list(ops)

    def test_known(self):
        assert ops_to_cigar(list("MMXMIID")) == "2M1X1M2I1D"
        assert cigar_to_ops("2M1X") == ["M", "M", "X"]

    def test_equals_maps_to_match(self):
        assert cigar_to_ops("3=") == ["M", "M", "M"]

    def test_empty(self):
        assert ops_to_cigar([]) == ""
        assert cigar_to_ops("") == []

    def test_malformed_rejected(self):
        with pytest.raises(AlignmentError):
            cigar_to_ops("3Q")
        with pytest.raises(AlignmentError):
            cigar_to_ops("M3")


class TestEditCost:
    def test_matches_free(self):
        assert edit_cost("MMMM") == 0

    def test_each_error_costs_one(self):
        assert edit_cost("MXID") == 3

    def test_unknown_op_rejected(self):
        with pytest.raises(AlignmentError):
            edit_cost("Z")


class TestOpCodes:
    def test_two_bit_encoding_roundtrip(self):
        for op, code in OP_TO_CODE.items():
            assert 0 <= code <= 3
            assert CODE_TO_OP[code] == op


class TestAlignmentValidate:
    def test_paper_example(self):
        """Figure 1: GCAT vs GATT aligns as M D M M I with distance 2."""
        alignment = Alignment(
            pattern="GCAT", text="GATT", ops=tuple("MDMMI"), score=2
        )
        alignment.validate()

    def test_detects_wrong_score(self):
        alignment = Alignment(
            pattern="GCAT", text="GATT", ops=tuple("MDMMI"), score=3
        )
        with pytest.raises(AlignmentError, match="score"):
            alignment.validate()

    def test_detects_mislabelled_match(self):
        alignment = Alignment(pattern="A", text="C", ops=("M",), score=0)
        with pytest.raises(AlignmentError, match="mismatching"):
            alignment.validate()

    def test_detects_mislabelled_mismatch(self):
        alignment = Alignment(pattern="A", text="A", ops=("X",), score=1)
        with pytest.raises(AlignmentError, match="matching"):
            alignment.validate()

    def test_detects_underrun(self):
        alignment = Alignment(pattern="AA", text="A", ops=("M",), score=0)
        with pytest.raises(AlignmentError, match="consumes"):
            alignment.validate()

    def test_detects_overrun(self):
        alignment = Alignment(pattern="A", text="A", ops=("M", "I"), score=1)
        with pytest.raises(AlignmentError, match="overruns"):
            alignment.validate()


class TestAffineScore:
    def test_all_matches_scores_zero(self):
        alignment = Alignment(pattern="AAA", text="AAA", ops=tuple("MMM"), score=0)
        assert alignment.affine_score() == 0

    def test_gap_open_charged_once_per_run(self):
        alignment = Alignment(
            pattern="AAA", text="AAAAA", ops=tuple("MMMII"), score=2
        )
        # one gap of length 2: open 6 + 2 * extend 2
        assert alignment.affine_score() == 10

    def test_separate_gaps_open_twice(self):
        alignment = Alignment(
            pattern="AAA", text="AAAAA", ops=tuple("IMMMI"), score=2
        )
        assert alignment.affine_score() == 16

    def test_insertion_then_deletion_both_open(self):
        alignment = Alignment(pattern="A", text="C", ops=tuple("ID"), score=2)
        assert alignment.affine_score() == 16


class TestRelabel:
    def test_relabels_by_characters(self):
        ops = relabel_diagonal_ops("AC", "AG", ["M", "M"])
        assert ops == ["M", "X"]

    def test_preserves_indels(self):
        ops = relabel_diagonal_ops("A", "AG", ["M", "I"])
        assert ops == ["M", "I"]


class TestPackedOps:
    @given(ops_strategy)
    def test_roundtrip(self, ops):
        from repro.core.cigar import pack_ops, unpack_ops

        assert unpack_ops(pack_ops(ops), len(ops)) == list(ops)

    def test_four_ops_per_byte(self):
        from repro.core.cigar import pack_ops

        assert len(pack_ops(["M"] * 9)) == 3

    def test_bounds_checked(self):
        from repro.core.cigar import pack_ops, unpack_ops

        with pytest.raises(AlignmentError):
            unpack_ops(pack_ops(["M"] * 4), 5)
        with pytest.raises(AlignmentError):
            pack_ops(["Z"])


class TestAlignmentStats:
    def test_counts_and_identity(self):
        from repro.core.cigar import alignment_stats

        stats = alignment_stats(list("MMMXID"))
        assert (stats.matches, stats.mismatches) == (3, 1)
        assert (stats.insertions, stats.deletions) == (1, 1)
        assert stats.columns == 6
        assert stats.gaps == 2
        assert stats.identity == pytest.approx(0.5)

    def test_empty_alignment(self):
        from repro.core.cigar import alignment_stats

        stats = alignment_stats([])
        assert stats.identity == 0.0

    def test_unknown_op_rejected(self):
        from repro.core.cigar import alignment_stats

        with pytest.raises(AlignmentError):
            alignment_stats(["Q"])

    def test_identity_of_real_alignment(self):
        from repro.align import align_pair
        from repro.core.cigar import alignment_stats

        result = align_pair("GCAT", "GATT")
        stats = alignment_stats(result.alignment.ops)
        assert stats.identity >= 0.5
        assert stats.columns == len(result.alignment.ops)
