"""Tests for the functional GMX ISA model (repro.core.isa)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scalar_edit_matrix
from repro.core.isa import (
    GmxIsa,
    IsaError,
    clamp_pos,
    decode_pos,
    encode_pos,
    pack_vector,
    unpack_vector,
)
from repro.core.tile import boundary_deltas, compute_tile
from repro.core.traceback import NextTile

dna8 = st.text(alphabet="ACGT", min_size=1, max_size=8)


class TestPosEncoding:
    def test_bottom_row_slots(self):
        for col in range(8):
            image = encode_pos(7, col, tile_size=8)
            assert image == 1 << col
            assert decode_pos(image, tile_size=8) == (7, col)

    def test_right_column_slots(self):
        for row in range(7):  # row 7 is covered by the bottom-row slot
            image = encode_pos(row, 7, tile_size=8)
            assert image == 1 << (8 + row)
            assert decode_pos(image, tile_size=8) == (row, 7)

    def test_interior_cell_rejected(self):
        with pytest.raises(IsaError):
            encode_pos(2, 3, tile_size=8)

    def test_out_of_tile_rejected(self):
        with pytest.raises(IsaError):
            encode_pos(8, 0, tile_size=8)

    def test_decode_rejects_non_one_hot(self):
        with pytest.raises(IsaError):
            decode_pos(0b11, tile_size=8)
        with pytest.raises(IsaError):
            decode_pos(0, tile_size=8)

    def test_clamp_onto_partial_tile(self):
        assert clamp_pos(31, 31, 5, 7) == (4, 6)
        assert clamp_pos(3, 31, 8, 8) == (3, 7)


class TestCsrAccess:
    def test_write_read_roundtrip(self):
        isa = GmxIsa(tile_size=8)
        isa.csrw("gmx_pattern", "ACGT")
        isa.csrw("gmx_text", "TTTT")
        assert isa.csrr("gmx_pattern") == "ACGT"
        assert isa.csrr("gmx_text") == "TTTT"
        assert isa.retired["csrw"] == 2
        assert isa.retired["csrr"] == 2

    def test_unknown_csr_rejected(self):
        isa = GmxIsa()
        with pytest.raises(IsaError):
            isa.csrw("gmx_bogus", 1)
        with pytest.raises(IsaError):
            isa.csrr("gmx_bogus")

    def test_oversized_chunk_rejected(self):
        isa = GmxIsa(tile_size=4)
        with pytest.raises(IsaError):
            isa.csrw("gmx_pattern", "ACGTA")

    def test_non_string_chunk_rejected(self):
        isa = GmxIsa()
        with pytest.raises(IsaError):
            isa.csrw("gmx_text", 0xBEEF)


class TestTileInstructions:
    @given(dna8, dna8)
    @settings(max_examples=100)
    def test_gmx_v_h_match_tile_kernel(self, pattern, text):
        isa = GmxIsa(tile_size=8)
        isa.csrw("gmx_pattern", pattern)
        isa.csrw("gmx_text", text)
        dv_in = pack_vector(boundary_deltas(len(pattern)))
        dh_in = pack_vector(boundary_deltas(len(text)))
        expected = compute_tile(
            pattern, text,
            boundary_deltas(len(pattern)), boundary_deltas(len(text)),
            tile_size=8,
        )
        assert unpack_vector(isa.gmx_v(dv_in, dh_in), len(pattern)) == list(
            expected.dv_out
        )
        assert unpack_vector(isa.gmx_h(dv_in, dh_in), len(text)) == list(
            expected.dh_out
        )
        assert isa.retired["gmx.v"] == 1
        assert isa.retired["gmx.h"] == 1

    def test_gmx_vh_fused_matches_separate(self):
        isa = GmxIsa(tile_size=8)
        isa.csrw("gmx_pattern", "ACGTACGT")
        isa.csrw("gmx_text", "ACGAACGA")
        dv = pack_vector(boundary_deltas(8))
        dh = pack_vector(boundary_deltas(8))
        fused = isa.gmx_vh(dv, dh)
        assert fused == (isa.gmx_v(dv, dh), isa.gmx_h(dv, dh))
        assert isa.retired["gmx.vh"] == 1

    def test_requires_pattern_and_text(self):
        isa = GmxIsa(tile_size=8)
        with pytest.raises(IsaError):
            isa.gmx_v(0, 0)


class TestTracebackInstruction:
    def test_single_tile_traceback_updates_csrs(self):
        isa = GmxIsa(tile_size=4)
        isa.csrw("gmx_pattern", "GCAT")
        isa.csrw("gmx_text", "GATT")
        isa.csrw("gmx_pos", encode_pos(3, 3, tile_size=4))
        dv = pack_vector(boundary_deltas(4))
        dh = pack_vector(boundary_deltas(4))
        result = isa.gmx_tb(dv, dh)
        assert isa.retired["gmx.tb"] == 1
        # The alignment of GCAT/GATT costs 2 (Figure 1/6).
        cost = sum(1 for op in result.ops if op != "M")
        assert cost <= 2
        assert isa.gmx_lo or isa.gmx_hi  # encoded ops landed in the CSRs
        assert result.next_tile in tuple(NextTile)

    def test_pos_clamped_for_partial_tiles(self):
        """Drivers set the full-tile corner; the ISA clamps to the chunk."""
        isa = GmxIsa(tile_size=8)
        isa.csrw("gmx_pattern", "ACG")
        isa.csrw("gmx_text", "ACG")
        isa.csrw("gmx_pos", encode_pos(7, 7, tile_size=8))
        dv = pack_vector(boundary_deltas(3))
        dh = pack_vector(boundary_deltas(3))
        result = isa.gmx_tb(dv, dh)
        assert list(result.ops) == ["M", "M", "M"]


class TestAccounting:
    def test_reset(self):
        isa = GmxIsa(tile_size=4)
        isa.csrw("gmx_pattern", "AC")
        assert isa.retired_total == 1
        isa.reset_counters()
        assert isa.retired_total == 0
