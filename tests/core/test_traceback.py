"""Tests for tile traceback / gmx.tb semantics (repro.core.traceback)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scalar_edit_matrix
from repro.core.cigar import Alignment, OP_DELETION, OP_INSERTION
from repro.core.tile import boundary_deltas, compute_tile_interior
from repro.core.traceback import (
    NextTile,
    pack_tile_ops,
    traceback_tile,
    unpack_tile_ops,
    walk_tile,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=12)


def complete_single_tile_alignment(pattern, text, tile_size=16):
    """Run a single-tile traceback and complete it along the boundary."""
    n, m = len(pattern), len(text)
    result = traceback_tile(
        pattern,
        text,
        boundary_deltas(n),
        boundary_deltas(m),
        (n - 1, m - 1),
        tile_size=tile_size,
    )
    interior = compute_tile_interior(
        pattern, text, boundary_deltas(n), boundary_deltas(m), tile_size=tile_size
    )
    _, exit_row, exit_col = walk_tile(pattern, text, interior, (n - 1, m - 1))
    ops = list(result.ops)
    ops.extend([OP_DELETION] * (exit_row + 1))
    ops.extend([OP_INSERTION] * (exit_col + 1))
    ops.reverse()
    return ops, result


class TestWalk:
    @given(dna, dna)
    @settings(max_examples=150)
    def test_single_tile_walk_is_optimal(self, pattern, text):
        """The walked path's cost must equal the true edit distance."""
        distance = scalar_edit_matrix(pattern, text)[len(pattern)][len(text)]
        ops, _ = complete_single_tile_alignment(pattern, text)
        Alignment(
            pattern=pattern, text=text, ops=tuple(ops), score=distance
        ).validate()

    @given(dna, dna)
    @settings(max_examples=100)
    def test_path_descends_antidiagonals(self, pattern, text):
        """Each op lowers i+j by ≥1 — at most one cell per antidiagonal."""
        result = traceback_tile(
            pattern,
            text,
            boundary_deltas(len(pattern)),
            boundary_deltas(len(text)),
            (len(pattern) - 1, len(text) - 1),
            tile_size=16,
        )
        assert len(result.ops) <= len(pattern) + len(text) - 1

    def test_start_outside_tile_rejected(self):
        with pytest.raises(ValueError):
            traceback_tile("AC", "AC", [1, 1], [1, 1], (5, 0), tile_size=4)


class TestNextTileClassification:
    def test_pure_match_exits_diagonally(self):
        result = traceback_tile(
            "ACGT", "ACGT", boundary_deltas(4), boundary_deltas(4), (3, 3),
            tile_size=4,
        )
        assert result.next_tile is NextTile.DIAGONAL
        assert result.next_pos == (3, 3)

    def test_deletion_column_exits_up(self):
        # Pattern much "longer" in walk terms: all deletions from column 0.
        result = traceback_tile(
            "AAAA", "C", boundary_deltas(4), [1], (3, 0), tile_size=4
        )
        assert result.next_tile in (NextTile.UP, NextTile.DIAGONAL)

    def test_up_exit_preserves_column(self):
        # Start on the right edge of a tall tile: MMM... then exit up.
        result = traceback_tile(
            "AAAA", "AA", boundary_deltas(4), boundary_deltas(2), (3, 1),
            tile_size=4,
        )
        # Two matches consume both columns; exit depends on path, but the
        # reported next position must lie on a tile edge.
        row, col = result.next_pos
        assert row == 3 or col == 3


class TestPackUnpack:
    @given(dna, dna)
    @settings(max_examples=150)
    def test_roundtrip_through_registers(self, pattern, text):
        """gmx_lo/gmx_hi encode the walk losslessly given the start cell."""
        n, m = len(pattern), len(text)
        start = (n - 1, m - 1)
        result = traceback_tile(
            pattern, text, boundary_deltas(n), boundary_deltas(m), start,
            tile_size=16,
        )
        lo, hi = pack_tile_ops(result.ops, start, result.next_tile, tile_size=16)
        ops, next_tile = unpack_tile_ops(
            lo, hi, start, len(result.ops), tile_size=16
        )
        assert tuple(ops) == result.ops
        assert next_tile == result.next_tile

    def test_register_width_bounded(self):
        """gmx_lo and gmx_hi must fit 2T bits each."""
        tile_size = 8
        ops = ("M",) * 8
        lo, hi = pack_tile_ops(ops, (7, 7), NextTile.DIAGONAL, tile_size=tile_size)
        assert lo < (1 << (2 * tile_size))
        assert hi < (1 << (2 * tile_size))

    def test_next_tile_in_top_bits(self):
        lo, hi = pack_tile_ops((), (7, 7), NextTile.LEFT, tile_size=8)
        assert (hi >> 14) & 0b11 == NextTile.LEFT.code
