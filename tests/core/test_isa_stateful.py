"""Stateful fuzzing of the GMX ISA model.

A Hypothesis rule-based state machine drives :class:`GmxIsa` with random
instruction sequences (CSR writes, tile computations, tracebacks) while
maintaining an independent mirror of the architectural state, checking
after every step that:

* CSR reads return the mirrored values;
* ``gmx.v``/``gmx.h`` outputs equal the reference cell-by-cell kernel for
  whatever chunks happen to be loaded;
* the retired-instruction counter advances by exactly one per instruction;
* ``gmx.tb`` leaves gmx_pos one-hot and gmx_lo/gmx_hi within 2T bits.

This catches ordering/state bugs that directed tests (which always set up
a fresh ISA) cannot — e.g. stale Peq caches after a pattern rewrite.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.bitvec import pack_deltas, unpack_deltas
from repro.core.isa import GmxIsa, encode_pos
from repro.core.tile import compute_tile_reference

TILE = 6

chunk_strategy = st.text(alphabet="ACGT", min_size=1, max_size=TILE)
delta_strategy = st.lists(
    st.sampled_from([-1, 0, 1]), min_size=TILE, max_size=TILE
)


class IsaMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.isa = GmxIsa(tile_size=TILE)
        self.mirror_pattern = ""
        self.mirror_text = ""
        self.retired = 0

    # -- rules -------------------------------------------------------------

    @rule(chunk=chunk_strategy)
    def write_pattern(self, chunk):
        self.isa.csrw("gmx_pattern", chunk)
        self.mirror_pattern = chunk
        self.retired += 1

    @rule(chunk=chunk_strategy)
    def write_text(self, chunk):
        self.isa.csrw("gmx_text", chunk)
        self.mirror_text = chunk
        self.retired += 1

    @precondition(lambda self: self.mirror_pattern and self.mirror_text)
    @rule(dv=delta_strategy, dh=delta_strategy)
    def compute_tile(self, dv, dh):
        dv_in = dv[: len(self.mirror_pattern)]
        dh_in = dh[: len(self.mirror_text)]
        got_v = self.isa.gmx_v(pack_deltas(dv_in), pack_deltas(dh_in))
        got_h = self.isa.gmx_h(pack_deltas(dv_in), pack_deltas(dh_in))
        self.retired += 2
        expected = compute_tile_reference(
            self.mirror_pattern, self.mirror_text, dv_in, dh_in,
            tile_size=TILE,
        )
        assert unpack_deltas(got_v, len(dv_in)) == list(expected.dv_out)
        assert unpack_deltas(got_h, len(dh_in)) == list(expected.dh_out)

    @precondition(lambda self: self.mirror_pattern and self.mirror_text)
    @rule(dv=delta_strategy, dh=delta_strategy)
    def traceback_tile(self, dv, dh):
        dv_in = dv[: len(self.mirror_pattern)]
        dh_in = dh[: len(self.mirror_text)]
        self.isa.csrw("gmx_pos", encode_pos(TILE - 1, TILE - 1, TILE))
        result = self.isa.gmx_tb(pack_deltas(dv_in), pack_deltas(dh_in))
        self.retired += 2  # csrw + gmx.tb
        assert 1 <= len(result.ops) <= 2 * TILE - 1
        # gmx_pos must be one-hot within 2T slots.
        pos = self.isa.gmx_pos
        assert pos > 0 and pos & (pos - 1) == 0
        assert pos < (1 << (2 * TILE))
        assert self.isa.gmx_lo < (1 << (2 * TILE))
        assert self.isa.gmx_hi < (1 << (2 * TILE))

    @rule()
    def read_back_chunks(self):
        assert self.isa.csrr("gmx_pattern") == self.mirror_pattern
        assert self.isa.csrr("gmx_text") == self.mirror_text
        self.retired += 2

    # -- invariants ----------------------------------------------------------

    @invariant()
    def retired_counter_tracks_instructions(self):
        assert self.isa.retired_total == self.retired


TestIsaStateMachine = IsaMachine.TestCase
