"""Tests for the GMXΔ function (repro.core.delta)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.delta import (
    DELTA_VALUES,
    DeltaEncodingError,
    decode_delta,
    encode_delta,
    enumerate_gmx_delta_truth_table,
    gmx_delta,
    gmx_delta_bits,
    gmx_delta_via_bits,
)


class TestArithmeticForm:
    def test_matches_bpm_recurrence_on_all_inputs(self):
        """GMXΔ must equal min{-eq, Δa, Δb} + 1 − Δb (Eq. 2)."""
        for a in DELTA_VALUES:
            for b in DELTA_VALUES:
                for eq in (0, 1):
                    assert gmx_delta(a, b, eq) == min(-eq, a, b) + 1 - b

    def test_output_always_in_delta_range(self):
        for _, _, _, out in enumerate_gmx_delta_truth_table():
            assert out in DELTA_VALUES

    def test_truth_table_has_18_entries(self):
        assert len(list(enumerate_gmx_delta_truth_table())) == 18

    def test_match_cancels_complement(self):
        """With eq=1 the diagonal is free: D[i,j] = D[i−1,j−1], so the
        output difference is exactly the negated complement (−Δb)."""
        for a in DELTA_VALUES:
            for b in DELTA_VALUES:
                assert gmx_delta(a, b, 1) == -b

    @pytest.mark.parametrize("bad", [-2, 2, 5, None])
    def test_rejects_bad_delta(self, bad):
        with pytest.raises(DeltaEncodingError):
            gmx_delta(bad, 0, 0)
        with pytest.raises(DeltaEncodingError):
            gmx_delta(0, bad, 0)

    @pytest.mark.parametrize("bad_eq", [-1, 2, 7])
    def test_rejects_bad_eq(self, bad_eq):
        with pytest.raises(DeltaEncodingError):
            gmx_delta(0, 0, bad_eq)


class TestBooleanForm:
    def test_equivalent_to_arithmetic_on_all_18_inputs(self):
        """The paper verifies Eq. 3 by brute-force enumeration; so do we."""
        for a in DELTA_VALUES:
            for b in DELTA_VALUES:
                for eq in (0, 1):
                    assert gmx_delta_via_bits(a, b, eq) == gmx_delta(a, b, eq)

    def test_never_produces_illegal_bit_pattern(self):
        for a in DELTA_VALUES:
            for b in DELTA_VALUES:
                a0, a1 = encode_delta(a)
                b0, b1 = encode_delta(b)
                for eq in (0, 1):
                    out0, out1 = gmx_delta_bits(a0, a1, b0, b1, eq)
                    assert (out0, out1) != (1, 1)


class TestEncoding:
    def test_roundtrip(self):
        for delta in DELTA_VALUES:
            assert decode_delta(*encode_delta(delta)) == delta

    def test_encoding_definition(self):
        """Δ[0] = (Δ == +1), Δ[1] = (Δ == −1), per the paper."""
        assert encode_delta(1) == (1, 0)
        assert encode_delta(0) == (0, 0)
        assert encode_delta(-1) == (0, 1)

    def test_decode_rejects_illegal_pattern(self):
        with pytest.raises(DeltaEncodingError):
            decode_delta(1, 1)

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(DeltaEncodingError):
            encode_delta(2)


@given(
    a=st.sampled_from(DELTA_VALUES),
    b=st.sampled_from(DELTA_VALUES),
    eq=st.sampled_from([0, 1]),
)
def test_delta_bounded_by_one_property(a, b, eq):
    """Output differences never exceed ±1 — the BPM invariant."""
    assert -1 <= gmx_delta(a, b, eq) <= 1
