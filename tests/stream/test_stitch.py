"""Stitcher unit tests: anchors, seams, ordering, and error contracts.

Chunk alignments are built directly (no pipeline) so each seam shape —
common-anchor cut, anchorless bridge, out-of-order arrival — is exercised
in isolation with known coordinates.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import EdlibAligner
from repro.stream import (
    Anchor,
    ChunkAlignment,
    ChunkJob,
    StreamError,
    Stitcher,
    common_anchor,
    find_anchors,
)

from conftest import random_dna, scalar_edit_distance


def make_chunk(
    reference: str,
    query: str,
    order: int,
    ref_span: tuple,
    query_span: tuple,
) -> ChunkAlignment:
    """Globally align one query span against one reference window."""
    ref_start, ref_end = ref_span
    query_start, query_end = query_span
    job = ChunkJob(
        order=order,
        chunk_index=order,
        ref_start=ref_start,
        ref_end=ref_end,
        query_start=query_start,
        query_end=query_end,
        pattern=query[query_start:query_end],
        text=reference[ref_start:ref_end],
        votes=1,
        diagonal=ref_start - query_start,
    )
    outcome = EdlibAligner().align(job.pattern, job.text, traceback=True)
    return ChunkAlignment(
        job=job, ops=tuple(outcome.alignment.ops), score=outcome.score
    )


@pytest.fixture
def exact_case():
    """query == reference[500:1500]; two overlapping windows."""
    rng = random.Random(11)
    reference = random_dna(2000, rng)
    query = reference[500:1500]
    chunks = [
        make_chunk(reference, query, 0, (400, 1000), (0, 500)),
        make_chunk(reference, query, 1, (900, 1600), (400, 1000)),
    ]
    return reference, query, chunks


class TestConstruction:
    def test_empty_query_rejected(self):
        with pytest.raises(StreamError, match="empty query"):
            Stitcher("")

    def test_min_anchor_must_be_positive(self):
        with pytest.raises(ValueError, match="min_anchor"):
            Stitcher("ACGT", min_anchor=0)


class TestAnchors:
    def test_find_anchors_absolute_coordinates(self, exact_case):
        _, _, chunks = exact_case
        anchors = find_anchors(chunks[0], min_anchor=12)
        # Window 400..1000 vs query 0..500: 100 slack bases then 500 M.
        assert anchors == [Anchor(query=0, ref=500, length=500)]
        assert anchors[0].diagonal == 500
        assert anchors[0].ref_end == 1000

    def test_short_match_runs_are_not_anchors(self):
        rng = random.Random(12)
        reference = random_dna(100, rng)
        # Query mismatches every 4th base: no M run reaches 12.
        query = "".join(
            ("A" if c != "A" else "C") if i % 4 == 0 else c
            for i, c in enumerate(reference)
        )
        chunk = make_chunk(reference, query, 0, (0, 100), (0, 100))
        assert find_anchors(chunk, min_anchor=12) == []

    def test_common_anchor_intersects_and_clamps(self):
        left = [Anchor(query=0, ref=100, length=100)]
        right = [Anchor(query=50, ref=150, length=100)]
        # Same diagonal (100): intersection 150..200, clamped to hi=180.
        assert common_anchor(
            left, right, lo=0, hi=180, min_anchor=12
        ) == (150, 180, 100)

    def test_common_anchor_requires_same_diagonal(self):
        left = [Anchor(query=0, ref=100, length=100)]
        right = [Anchor(query=49, ref=150, length=100)]
        assert (
            common_anchor(left, right, lo=0, hi=1000, min_anchor=12) is None
        )

    def test_common_anchor_tie_breaks_to_smallest_position(self):
        left = [
            Anchor(query=0, ref=100, length=20),
            Anchor(query=100, ref=200, length=20),
        ]
        right = list(left)
        cut = common_anchor(left, right, lo=0, hi=1000, min_anchor=12)
        assert cut == (100, 120, 100)


class TestStitching:
    def finish(self, query, chunks, order=None):
        stitcher = Stitcher(query)
        for index in order if order is not None else range(len(chunks)):
            stitcher.submit(chunks[index])
        return stitcher.finish()

    def test_exact_match_stitches_clean(self, exact_case):
        _, query, chunks = exact_case
        stitched = self.finish(query, chunks)
        assert stitched.score == 0
        assert stitched.cigar == "1000M"
        assert (stitched.text_start, stitched.text_end) == (500, 1500)
        assert stitched.counters.chunks == 2
        assert stitched.counters.anchor_seams == 1
        assert stitched.counters.bridge_seams == 0

    def test_out_of_order_submission_is_identical(self, exact_case):
        _, query, chunks = exact_case
        in_order = self.finish(query, chunks)
        stitcher = Stitcher(query)
        stitcher.submit(chunks[1])
        stitcher.submit(chunks[0])
        reordered = stitcher.finish()
        assert reordered.runs == in_order.runs
        assert reordered.text == in_order.text
        assert reordered.counters.max_heap_depth == 2

    def test_duplicate_order_rejected(self, exact_case):
        _, query, chunks = exact_case
        stitcher = Stitcher(query)
        stitcher.submit(chunks[0])
        with pytest.raises(StreamError, match="submitted twice"):
            stitcher.submit(chunks[0])

    def test_missing_order_detected_at_finish(self, exact_case):
        _, query, chunks = exact_case
        stitcher = Stitcher(query)
        stitcher.submit(chunks[1])  # order 0 never arrives
        with pytest.raises(StreamError, match="never arrived"):
            stitcher.finish()

    def test_finish_twice_rejected(self, exact_case):
        _, query, chunks = exact_case
        stitcher = Stitcher(query)
        for chunk in chunks:
            stitcher.submit(chunk)
        stitcher.finish()
        with pytest.raises(StreamError, match="already finished"):
            stitcher.finish()
        with pytest.raises(StreamError, match="already finished"):
            stitcher.submit(chunks[0])

    def test_gap_in_reference_coverage_rejected(self, exact_case):
        reference, query, chunks = exact_case
        stitcher = Stitcher(query)
        stitcher.submit(chunks[0])
        gapped = make_chunk(reference, query, 1, (1100, 1600), (600, 1000))
        with pytest.raises(StreamError, match="contiguously"):
            stitcher.submit(gapped)

    def test_no_usable_chunk_raises(self):
        stitcher = Stitcher("ACGTACGTACGTACGT")
        with pytest.raises(StreamError, match="anchored nowhere"):
            stitcher.finish()

    def test_anchorless_overlap_bridges(self):
        rng = random.Random(13)
        reference = random_dna(2000, rng)
        # Query = reference locus, but every 4th base of the overlap
        # region (900..1000) mismatches: the seam has no anchor and must
        # be repaired by exact realignment.
        locus = list(reference[500:1500])
        flips = 0
        for absolute in range(900, 1000, 4):
            index = absolute - 500
            locus[index] = "A" if locus[index] != "A" else "C"
            flips += 1
        query = "".join(locus)
        chunks = [
            make_chunk(reference, query, 0, (400, 1000), (0, 500)),
            make_chunk(reference, query, 1, (900, 1600), (400, 1000)),
        ]
        stitched = self.finish(query, chunks)
        assert stitched.counters.bridge_seams == 1
        assert stitched.counters.bridge_columns > 0
        assert stitched.score == flips
        assert stitched.score == scalar_edit_distance(query, stitched.text)
