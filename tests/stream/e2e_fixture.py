"""Generate the scaled end-to-end conformance fixture (CLI drill).

Writes a planted-locus FASTA pair — a ~1 Mbp reference embedding a
mutated ~100 kbp query — for the `make stream-test` / CI drill that
runs `repro stream align ... --verify-windows` against it.

Usage::

    python tests/stream/e2e_fixture.py OUTDIR [REF_LEN] [QUERY_LEN]
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

from repro.workloads.generator import mutate, random_sequence


def write_fasta(path: Path, name: str, sequence: str, width: int = 80) -> None:
    lines = [f">{name}"]
    lines.extend(
        sequence[lo:lo + width] for lo in range(0, len(sequence), width)
    )
    path.write_text("\n".join(lines) + "\n")


def main(argv) -> int:
    outdir = Path(argv[1])
    ref_len = int(argv[2]) if len(argv) > 2 else 1_000_000
    query_len = int(argv[3]) if len(argv) > 3 else 100_000
    outdir.mkdir(parents=True, exist_ok=True)

    rng = random.Random(0xE2E)
    query = random_sequence(query_len, rng)
    locus = mutate(query, 0.02, rng)
    flank = max(0, ref_len - len(locus)) // 2
    reference = (
        random_sequence(flank, rng) + locus + random_sequence(flank, rng)
    )
    write_fasta(outdir / "e2e_ref.fasta", "chrE2E", reference)
    write_fasta(outdir / "e2e_query.fasta", "query", query)
    print(
        f"wrote {outdir}/e2e_ref.fasta ({len(reference)} bp) and "
        f"{outdir}/e2e_query.fasta ({len(query)} bp), locus at {flank}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
