"""Tests of :mod:`repro.stream` — chunked alignment, stitching, and the
window-conformance harness."""
