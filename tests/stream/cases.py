"""Shared case builders for the stream suite.

Every test in this package aligns a query against a reference that
embeds a mutated copy of it at a *planted locus* between random flanks —
the streamed pipeline must find the locus through the k-mer filter and
recover an alignment as good as a whole-sequence oracle run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from conftest import mutate_dna, random_dna


@dataclass(frozen=True)
class PlantedCase:
    """A query embedded (mutated) into a reference at a known locus."""

    reference: str
    query: str
    locus_start: int
    locus_end: int
    edits: int


def planted_case(
    rng: random.Random,
    *,
    query_len: int = 2000,
    left_flank: int = 3000,
    right_flank: int = 3000,
    edits: int = 20,
) -> PlantedCase:
    """Build a reference = flank + mutate(query) + flank case."""
    query = random_dna(query_len, rng)
    locus = mutate_dna(query, edits, rng)
    left = random_dna(left_flank, rng)
    right = random_dna(right_flank, rng)
    return PlantedCase(
        reference=left + locus + right,
        query=query,
        locus_start=len(left),
        locus_end=len(left) + len(locus),
        edits=edits,
    )


def blocks_of(sequence: str, block_size: int):
    """Cut a string into blocks — a stand-in for a FASTA block stream."""
    for lo in range(0, len(sequence), block_size):
        yield sequence[lo:lo + block_size]


def lazy_reference_blocks(
    seed: int,
    left_flank: int,
    locus: str,
    right_flank: int,
    block_size: int = 4096,
):
    """Yield flank+locus+flank reference blocks without ever holding the
    whole reference in memory — the input shape of the O(chunk) memory
    regression test."""
    rng = random.Random(seed)

    def flank(length: int):
        for lo in range(0, length, block_size):
            yield random_dna(min(block_size, length - lo), rng)

    yield from flank(left_flank)
    yield from blocks_of(locus, block_size)
    yield from flank(right_flank)
