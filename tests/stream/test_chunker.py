"""Chunk-splitter unit tests: geometry validation and edge cases."""

from __future__ import annotations

import random

import pytest

from repro.stream import chunk_spans, iter_reference_chunks, validate_chunking

from conftest import random_dna


def reassemble(chunks, overlap: int) -> str:
    """Rebuild the reference from overlapping chunks via their steps."""
    out = []
    for chunk in chunks:
        if not out:
            out.append(chunk.sequence)
        else:
            out.append(chunk.sequence[overlap:])
    return "".join(out)


class TestValidateChunking:
    def test_overlap_equal_to_chunk_rejected(self):
        with pytest.raises(ValueError, match="cannot advance"):
            validate_chunking(64, 64)

    def test_overlap_larger_than_chunk_rejected(self):
        with pytest.raises(ValueError, match="cannot advance"):
            validate_chunking(64, 100)

    def test_zero_chunk_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            validate_chunking(0, 0)

    def test_negative_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            validate_chunking(64, -1)

    def test_zero_overlap_allowed(self):
        validate_chunking(1, 0)


class TestChunkSpans:
    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            chunk_spans(-1, 64, 16)

    def test_empty_reference_has_no_spans(self):
        assert chunk_spans(0, 64, 16) == []

    def test_chunk_larger_than_reference_is_single_span(self):
        assert chunk_spans(10, 64, 16) == [(0, 10)]

    def test_exact_fit_emits_one_chunk(self):
        assert chunk_spans(64, 64, 16) == [(0, 64)]

    def test_spans_cover_and_overlap(self):
        spans = chunk_spans(1000, 128, 32)
        assert spans[0][0] == 0
        assert spans[-1][1] == 1000
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert s1 == s0 + (128 - 32)
            assert s1 < e0  # consecutive windows share the overlap
            assert e0 - s0 == 128

    def test_final_chunk_may_be_short(self):
        spans = chunk_spans(130, 128, 32)
        assert spans == [(0, 128), (96, 130)]


class TestIterReferenceChunks:
    def test_empty_reference_yields_nothing(self):
        assert list(iter_reference_chunks("", 64, 16)) == []
        assert list(iter_reference_chunks(iter(()), 64, 16)) == []

    def test_matches_offline_spans(self):
        rng = random.Random(1)
        reference = random_dna(1037, rng)
        chunks = list(iter_reference_chunks(reference, 128, 32))
        assert [(c.start, c.end) for c in chunks] == chunk_spans(
            len(reference), 128, 32
        )
        for chunk in chunks:
            assert chunk.sequence == reference[chunk.start:chunk.end]
            assert len(chunk) == chunk.end - chunk.start
        assert [c.index for c in chunks] == list(range(len(chunks)))

    def test_only_last_chunk_is_final(self):
        rng = random.Random(2)
        chunks = list(iter_reference_chunks(random_dna(500, rng), 128, 32))
        assert [c.is_final for c in chunks] == [False] * (len(chunks) - 1) + [True]

    def test_chunk_larger_than_reference(self):
        chunks = list(iter_reference_chunks("ACGT", 64, 16))
        assert len(chunks) == 1
        assert chunks[0].sequence == "ACGT"
        assert chunks[0].is_final

    def test_block_stream_equals_string_input(self):
        rng = random.Random(3)
        reference = random_dna(4096 + 17, rng)
        from_string = list(iter_reference_chunks(reference, 256, 64))
        for block_size in (1, 7, 255, 256, 1000, 10_000):
            blocks = (
                reference[lo:lo + block_size]
                for lo in range(0, len(reference), block_size)
            )
            assert list(iter_reference_chunks(blocks, 256, 64)) == from_string

    def test_empty_blocks_are_skipped(self):
        rng = random.Random(4)
        reference = random_dna(300, rng)
        blocks = ["", reference[:100], "", "", reference[100:], ""]
        assert list(iter_reference_chunks(blocks, 128, 32)) == list(
            iter_reference_chunks(reference, 128, 32)
        )

    def test_reference_reassembles_from_chunks(self):
        rng = random.Random(5)
        reference = random_dna(999, rng)
        chunks = list(iter_reference_chunks(reference, 100, 25))
        assert reassemble(chunks, 25) == reference

    def test_invalid_geometry_raises_before_iteration(self):
        with pytest.raises(ValueError):
            # Generator functions defer execution; validation must not.
            iter_reference_chunks("ACGT", 16, 16)
