"""Peak-memory regression: streaming must stay O(chunk + query).

The reference is fed as lazily generated blocks (never materialised), so
the only O(reference) state the pipeline *could* accumulate is its own —
buffered chunks, job texts, stitch parts.  tracemalloc peaks for a 1x and
a 4x reference must therefore be within noise of each other; a peak that
scales with reference length fails the suite.
"""

from __future__ import annotations

import gc
import random
import tracemalloc

from repro.stream import StreamConfig, stream_align

from .cases import lazy_reference_blocks
from conftest import mutate_dna, random_dna

CONFIG = StreamConfig(chunk_size=1024, overlap=192)

#: 1x reference geometry; the scaled run multiplies the left flank only,
#: so the whole reference is scanned in both runs (the locus sits at the
#: far end and the scan cannot stop early).
LEFT_FLANK = 100_000
RIGHT_FLANK = 2_000
SCALE = 4


def peak_bytes(left_flank: int, query: str, locus: str) -> int:
    blocks = lazy_reference_blocks(0xFEED, left_flank, locus, RIGHT_FLANK)
    gc.collect()
    tracemalloc.start()
    try:
        result = stream_align(blocks, query, config=CONFIG)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert result.score <= 30
    assert result.reference_length >= left_flank
    return peak


def test_peak_memory_does_not_scale_with_reference():
    rng = random.Random(0xFEED + 1)
    query = random_dna(800, rng)
    locus = mutate_dna(query, 12, rng)
    base = peak_bytes(LEFT_FLANK, query, locus)
    scaled = peak_bytes(SCALE * LEFT_FLANK, query, locus)
    # A pipeline that buffered the reference would add ~300 KiB here
    # (SCALE-1 extra flank bytes); O(chunk) peaks differ only by noise.
    assert base < 32 * 1024 * 1024, f"baseline peak unexpectedly large: {base}"
    assert scaled < 1.5 * base, (
        f"peak memory scaled with reference length: {base} -> {scaled} bytes "
        f"for a {SCALE}x reference"
    )
