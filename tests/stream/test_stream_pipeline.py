"""End-to-end pipeline tests: engines, streaming inputs, filtering, and
error contracts of :func:`repro.stream.stream_align`."""

from __future__ import annotations

import random

import pytest

from repro.obs import runtime as obs
from repro.resilience import CheckpointError
from repro.stream import StreamConfig, StreamError, stream_align, stream_align_fasta

from .cases import blocks_of, planted_case
from conftest import random_dna, scalar_edit_distance

CONFIG = StreamConfig(chunk_size=1024, overlap=192)


@pytest.fixture(scope="module")
def case():
    return planted_case(
        random.Random(0xBEEF),
        query_len=1500,
        left_flank=2500,
        right_flank=2500,
        edits=16,
    )


@pytest.fixture(scope="module")
def serial_result(case):
    return stream_align(case.reference, case.query, config=CONFIG)


class TestSerial:
    def test_score_is_optimal_for_covered_span(self, case, serial_result):
        stitched = serial_result.stitched
        assert serial_result.score == scalar_edit_distance(
            case.query, stitched.text
        )
        assert serial_result.score <= case.edits

    def test_span_covers_planted_locus(self, case, serial_result):
        # Free-entry/exit trimming may shave edit-consumed flank bases,
        # but the bulk of the locus must be covered.
        assert abs(serial_result.text_start - case.locus_start) <= case.edits
        assert abs(serial_result.text_end - case.locus_end) <= case.edits

    def test_result_mirrors_stitched(self, serial_result):
        stitched = serial_result.stitched
        assert serial_result.cigar == stitched.cigar
        assert serial_result.text_start == stitched.text_start
        assert serial_result.text_end == stitched.text_end
        assert serial_result.engine == "serial"

    def test_counters_and_timings_account_for_work(self, case, serial_result):
        counters = serial_result.counters
        assert counters.chunks >= 5
        assert 1 <= counters.jobs <= counters.chunks
        assert counters.candidates >= counters.jobs
        assert serial_result.timings.align_seconds > 0
        assert serial_result.timings.filter_seconds > 0
        # The scan may stop early once the locus (plus the hole budget)
        # is covered, but never reads past the reference.
        assert case.locus_end <= serial_result.reference_length
        assert serial_result.reference_length <= len(case.reference)
        assert serial_result.query_length == len(case.query)

    def test_block_stream_equals_string_reference(self, case, serial_result):
        for block_size in (137, 4096, 1 << 16):
            result = stream_align(
                blocks_of(case.reference, block_size),
                case.query,
                config=CONFIG,
            )
            assert result.stitched.runs == serial_result.stitched.runs
            assert result.stitched.text == serial_result.stitched.text


class TestEngines:
    def test_pool_engine_is_byte_identical(self, case, serial_result):
        result = stream_align(
            case.reference,
            case.query,
            config=CONFIG,
            engine="pool",
            workers=2,
        )
        assert result.stitched.runs == serial_result.stitched.runs
        assert result.stitched.text == serial_result.stitched.text
        assert result.score == serial_result.score

    def test_resilient_engine_is_byte_identical(
        self, case, serial_result, tmp_path
    ):
        result = stream_align(
            case.reference,
            case.query,
            config=CONFIG,
            engine="resilient",
            checkpoint=str(tmp_path / "stream.journal"),
        )
        assert result.stitched.runs == serial_result.stitched.runs
        assert result.stitched.text == serial_result.stitched.text

    def test_checkpoint_rejects_different_geometry(self, case, tmp_path):
        journal = str(tmp_path / "stream.journal")
        stream_align(
            case.reference,
            case.query,
            config=CONFIG,
            engine="resilient",
            checkpoint=journal,
        )
        with pytest.raises(CheckpointError, match="different run"):
            stream_align(
                case.reference,
                case.query,
                config=StreamConfig(chunk_size=2048, overlap=192),
                engine="resilient",
                checkpoint=journal,
            )

    def test_unknown_engine_rejected(self, case):
        with pytest.raises(ValueError, match="unknown engine"):
            stream_align(case.reference, case.query, engine="quantum")


class TestFasta:
    def test_fasta_reference_equals_in_memory(
        self, case, serial_result, tmp_path
    ):
        path = tmp_path / "ref.fasta"
        wrapped = "\n".join(
            case.reference[lo:lo + 60]
            for lo in range(0, len(case.reference), 60)
        )
        decoy = "ACGT" * 30
        path.write_text(
            f">decoy first record\n{decoy}\n>chr1 planted locus\n{wrapped}\n"
        )
        result = stream_align_fasta(
            path, case.query, record="chr1", config=CONFIG, block_size=4096
        )
        assert result.stitched.runs == serial_result.stitched.runs
        assert result.stitched.text == serial_result.stitched.text


class TestFiltering:
    def test_n_desert_is_bridged(self):
        rng = random.Random(0xD0)
        query = random_dna(1200, rng)
        # The reference locus carries a 200-base N desert the query does
        # not have; the filter sees voteless windows yet the stitcher
        # must bridge them as one insertion run.
        locus = query[:600] + "N" * 200 + query[600:]
        reference = (
            random_dna(2000, rng) + locus + random_dna(2000, rng)
        )
        result = stream_align(reference, query, config=CONFIG)
        assert result.score == 200
        assert "200I" in result.cigar

    def test_n_run_straddling_chunk_boundary_is_bridged(self):
        rng = random.Random(0xD3)
        query = random_dna(1200, rng)
        locus = query[:600] + "N" * 200 + query[600:]
        # Window step is chunk_size - overlap = 832; a 1800-base left
        # flank puts the N run at absolute [2400, 2600), straddling the
        # window boundary at 3 * 832 = 2496.  Neither adjacent window
        # can match through it — the stitcher must still bridge it as
        # one insertion at the committed locus.
        reference = (
            random_dna(1800, rng) + locus + random_dna(2000, rng)
        )
        result = stream_align(reference, query, config=CONFIG)
        assert result.score == 200
        assert "200I" in result.cigar
        assert result.text_start == 1800

    def test_spurious_repeat_hit_is_skipped(self):
        rng = random.Random(0xD1)
        query = random_dna(1200, rng)
        # A second copy of the locus far downstream draws sketch votes on
        # a diagonal ~3k away from the committed one; those candidates
        # must be dropped as spurious, not stitched.
        reference = (
            random_dna(1500, rng)
            + query
            + random_dna(1500, rng)
            + query
            + random_dna(1500, rng)
        )
        result = stream_align(reference, query, config=CONFIG)
        assert result.score == 0
        assert result.text_start == 1500
        assert result.counters.spurious_skipped >= 1


class TestErrors:
    def test_empty_query_rejected(self):
        with pytest.raises(StreamError, match="query must be non-empty"):
            stream_align("ACGT" * 100, "")

    def test_empty_reference_rejected(self):
        with pytest.raises(StreamError, match="reference must be non-empty"):
            stream_align("", "ACGTACGTACGT")

    def test_alien_query_rejected(self, case):
        rng = random.Random(0xD2)
        with pytest.raises(StreamError, match="anchored nowhere"):
            stream_align(case.reference, random_dna(800, rng), config=CONFIG)

    def test_overlap_below_min_anchor_rejected(self, case):
        with pytest.raises(ValueError, match="min_anchor"):
            stream_align(
                case.reference,
                case.query,
                config=StreamConfig(chunk_size=256, overlap=8),
            )


class TestObservability:
    def test_spans_cover_all_stages(self, case):
        with obs.capture() as (recorder, _registry):
            stream_align(case.reference, case.query, config=CONFIG)
            names = {span.name for span in recorder.spans}
        assert "stream.align" in names
        assert "stream.align_chunk" in names
        assert "stream.stitch" in names
