"""CIGAR algebra tests: run round-trips, flank trimming, and the
canonical normal form that makes co-optimal alignments byte-comparable.

The property test is the load-bearing one: Edlib and Hirschberg walk
tie-broken traceback choices differently, so their raw op lists diverge
on almost every non-trivial pair — but both canonicalise to the same
normal form.  On a failure the pair is ddmin-shrunk with
:func:`conformance.oracle.shrink_case` before asserting, so the report
is a minimal reproducer.
"""

from __future__ import annotations

import random

import pytest

from repro.align import canonical_cigar, canonicalize_ops
from repro.align.chunked import (
    append_run,
    ops_to_runs,
    runs_consumed,
    runs_to_cigar,
    runs_to_ops,
    trim_insertion_flanks,
)
from repro.baselines import EdlibAligner, HirschbergAligner
from repro.core.cigar import AlignmentError, edit_cost

from conftest import mutate_dna, random_dna
from conformance.oracle import shrink_case


class TestRunAlgebra:
    def test_ops_runs_round_trip(self):
        ops = list("MMMXXIDDM")
        runs = ops_to_runs(ops)
        assert runs == [("M", 3), ("X", 2), ("I", 1), ("D", 2), ("M", 1)]
        assert runs_to_ops(runs) == ops
        assert runs_to_cigar(runs) == "3M2X1I2D1M"

    def test_append_run_coalesces(self):
        runs = [("M", 2)]
        append_run(runs, "M", 3)
        append_run(runs, "D", 1)
        append_run(runs, "D", 1)
        assert runs == [("M", 5), ("D", 2)]

    def test_append_zero_length_is_noop(self):
        runs = [("M", 2)]
        append_run(runs, "I", 0)
        assert runs == [("M", 2)]

    def test_runs_consumed(self):
        # D consumes pattern only, I consumes text only (core/cigar.py).
        assert runs_consumed([("M", 3), ("D", 2), ("I", 4)]) == (5, 7)


class TestTrimInsertionFlanks:
    def test_trims_both_flanks(self):
        core, leading, trailing = trim_insertion_flanks(list("IIMMXDI"))
        assert core == list("MMXD")
        assert (leading, trailing) == (2, 1)

    def test_no_flanks(self):
        core, leading, trailing = trim_insertion_flanks(list("MDM"))
        assert core == list("MDM")
        assert (leading, trailing) == (0, 0)

    def test_all_insertions_collapse_to_leading(self):
        core, leading, trailing = trim_insertion_flanks(list("III"))
        assert core == []
        assert (leading, trailing) == (3, 0)


class TestCanonicalizeRules:
    def test_rejects_mismatched_consumption(self):
        with pytest.raises(AlignmentError, match="consume"):
            canonicalize_ops("AC", "AC", ["M"])

    def test_relabels_from_characters(self):
        # An M over unequal characters becomes X and vice versa.
        assert canonicalize_ops("AC", "AG", ["M", "M"]) == ["M", "X"]
        assert canonicalize_ops("AC", "AC", ["X", "X"]) == ["M", "M"]

    def test_adjacent_gap_pair_resolves_to_substitution(self):
        # An adjacent I/D pair (cost 2) is never optimal — both orderings
        # canonicalise to the single substitution the band DP finds.
        assert canonicalize_ops("AG", "AT", list("MID")) == canonicalize_ops(
            "AG", "AT", list("MDI")
        )
        assert canonicalize_ops("AG", "AT", list("MID")) == ["M", "X"]

    def test_gap_slides_left_through_matches(self):
        # Deleting any of three identical As costs the same; canonical
        # form puts the gap leftmost.
        ops = canonicalize_ops("AAAG", "AAG", list("MMDM"))
        assert ops == canonicalize_ops("AAAG", "AAG", list("DMMM"))
        assert ops[0] == "D"

    def test_mismatch_gap_order_tie(self):
        # 1X1D and 1D1X are cost-equal; both canonicalise identically.
        a = canonicalize_ops("AG", "T", list("XD"))
        b = canonicalize_ops("AG", "T", list("DX"))
        assert a == b

    def test_balanced_detour_collapses(self):
        # I...D around matches vs two mismatches on the diagonal:
        # equal cost, the diagonal form wins (fewer gap columns).
        pattern, text = "GGGA", "CGGG"
        detour = list("IMMMD")
        diagonal = list("XMMX")
        assert edit_cost(detour) == edit_cost(diagonal) == 2
        assert canonicalize_ops(pattern, text, detour) == canonicalize_ops(
            pattern, text, diagonal
        )

    def test_split_gap_consolidates(self):
        # 1I1M1I vs 2I1M over pattern "A", text "GAA": cost-equal.
        a = canonicalize_ops("A", "GAA", list("IMI"))
        b = canonicalize_ops("A", "GAA", list("IIM"))
        assert a == b

    def test_cost_and_consumption_preserved(self):
        rng = random.Random(7)
        aligner = EdlibAligner()
        for _ in range(25):
            pattern = random_dna(rng.randrange(1, 120), rng)
            text = mutate_dna(pattern, rng.randrange(0, 12), rng)
            if not text:
                continue
            outcome = aligner.align(pattern, text, traceback=True)
            ops = list(outcome.alignment.ops)
            canonical = canonicalize_ops(pattern, text, ops)
            assert edit_cost(canonical) == edit_cost(ops)
            assert runs_consumed(ops_to_runs(canonical)) == (
                len(pattern),
                len(text),
            )


class TestCanonicalFormProperty:
    """Edlib and Hirschberg tracebacks canonicalise identically."""

    @pytest.mark.parametrize("case_seed", range(60))
    def test_cross_aligner_normal_form(self, case_seed):
        rng = random.Random(0xCA0 + case_seed)
        pattern = random_dna(rng.randrange(1, 200), rng)
        text = mutate_dna(pattern, rng.randrange(0, 24), rng)
        if not text:
            text = "A"

        edlib = EdlibAligner()
        hirschberg = HirschbergAligner()

        def mismatch(p: str, t: str) -> bool:
            if not p or not t:
                return False
            a = edlib.align(p, t, traceback=True)
            b = hirschberg.align(p, t, traceback=True)
            return canonical_cigar(p, t, a.alignment.ops) != canonical_cigar(
                p, t, b.alignment.ops
            )

        if mismatch(pattern, text):
            small_p, small_t = shrink_case(pattern, text, mismatch)
            a = edlib.align(small_p, small_t, traceback=True)
            b = hirschberg.align(small_p, small_t, traceback=True)
            pytest.fail(
                "canonical forms diverge (ddmin-shrunk reproducer): "
                f"pattern={small_p!r} text={small_t!r} "
                f"edlib={canonical_cigar(small_p, small_t, a.alignment.ops)} "
                f"hirschberg="
                f"{canonical_cigar(small_p, small_t, b.alignment.ops)} "
                f"case_seed={case_seed}"
            )
