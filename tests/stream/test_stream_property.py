"""Property suite: chunking invariance and window conformance.

Two pillars of the streaming pipeline's correctness story:

* **Chunking invariance** — the stitched global alignment is a function
  of (reference, query), not of the window geometry that produced it.
  Random chunk_size/overlap draws must yield byte-identical results; on
  a violation the geometry set is ddmin-shrunk
  (:func:`conformance.oracle.shrink_shard`) to a minimal disagreeing
  pair before failing.

* **Window conformance** — seeded random sub-windows of the stitched
  path, cut at anchor midpoints, must be score-identical and
  byte-identical (after canonicalisation) to an independent Hirschberg
  oracle run on the same window.  Accumulated across cases to >= 200
  verified windows, per the reproduction target.
"""

from __future__ import annotations

import random

import pytest

from repro.stream import StreamConfig, stream_align, verify_windows

from .cases import planted_case
from conformance.oracle import shrink_shard

#: Window-conformance accumulation target across all cases.
WINDOW_TARGET = 200

CASE_SEEDS = (0xA1, 0xA2, 0xA3, 0xA4, 0xA5)


def geometry_draws(rng: random.Random, count: int):
    """Seeded random (chunk_size, overlap) pairs the pipeline accepts."""
    draws = []
    while len(draws) < count:
        chunk_size = rng.randrange(700, 4097)
        overlap = rng.randrange(64, max(65, chunk_size // 3))
        config = StreamConfig(chunk_size=chunk_size, overlap=overlap)
        try:
            config.validate()
        except ValueError:
            continue
        draws.append(config)
    return draws


class TestChunkingInvariance:
    def test_random_geometries_are_byte_identical(self):
        rng = random.Random(0x5EED)
        case = planted_case(
            rng, query_len=2000, left_flank=3000, right_flank=3000, edits=24
        )
        configs = geometry_draws(rng, 6)

        def outcome(config: StreamConfig):
            result = stream_align(case.reference, case.query, config=config)
            return (
                result.score,
                result.text_start,
                result.text_end,
                result.cigar,
            )

        outcomes = {config: outcome(config) for config in configs}
        if len(set(outcomes.values())) > 1:
            def disagrees(subset):
                return len({outcomes[config] for config in subset}) > 1

            minimal = shrink_shard(configs, disagrees)
            pytest.fail(
                "chunk geometry changed the stitched alignment "
                "(ddmin-shrunk to a minimal disagreeing set): "
                + "; ".join(
                    f"chunk_size={config.chunk_size} "
                    f"overlap={config.overlap} -> {outcomes[config]}"
                    for config in minimal
                )
            )

    def test_overlap_extremes_agree_with_default(self):
        rng = random.Random(0x5EEE)
        case = planted_case(
            rng, query_len=1500, left_flank=2000, right_flank=2000, edits=15
        )
        results = [
            stream_align(case.reference, case.query, config=config)
            for config in (
                StreamConfig(chunk_size=1024, overlap=128),
                StreamConfig(chunk_size=1024, overlap=512),  # half the chunk
                StreamConfig(chunk_size=1024, overlap=768),  # three quarters
            )
        ]
        first = results[0]
        for other in results[1:]:
            assert other.stitched.runs == first.stitched.runs
            assert other.stitched.text == first.stitched.text

    def test_minimal_overlap_bounds_boundary_loss(self):
        # overlap == min_anchor is accepted but marginal: a query flank
        # landing in a window with too few sketch votes can go unmapped
        # (documented limitation).  The loss is bounded by the unmapped
        # flank columns the stitcher accounts for — never silent.
        rng = random.Random(0x5EEE)
        case = planted_case(
            rng, query_len=1500, left_flank=2000, right_flank=2000, edits=15
        )
        baseline = stream_align(
            case.reference,
            case.query,
            config=StreamConfig(chunk_size=1024, overlap=512),
        )
        marginal = stream_align(
            case.reference,
            case.query,
            config=StreamConfig(chunk_size=1024, overlap=12),
        )
        counters = marginal.stitched.counters
        unmapped = counters.head_unmapped + counters.tail_unmapped
        assert marginal.score <= baseline.score + unmapped
        assert unmapped <= marginal.config.chunk_size


class TestWindowConformance:
    @pytest.fixture(scope="class")
    def checks(self):
        accumulated = []
        for seed in CASE_SEEDS:
            rng = random.Random(seed)
            case = planted_case(
                rng,
                query_len=3000,
                left_flank=2500,
                right_flank=2500,
                edits=30,
            )
            result = stream_align(
                case.reference,
                case.query,
                config=StreamConfig(chunk_size=1024, overlap=192),
            )
            accumulated.extend(
                verify_windows(
                    result.stitched,
                    windows=50,
                    seed=seed,
                    min_span=96,
                    max_span=384,
                )
            )
        return accumulated

    def test_accumulates_target_window_count(self, checks):
        assert len(checks) >= WINDOW_TARGET

    def test_every_window_matches_the_oracle(self, checks):
        bad = [check for check in checks if not check.ok]
        assert not bad, (
            f"{len(bad)}/{len(checks)} windows diverged from the "
            f"Hirschberg oracle; first: {bad[0]}"
        )

    def test_window_geometry_invariants(self, checks):
        for check in checks:
            assert check.query_end > check.query_start
            assert 96 <= check.ref_end - check.ref_start <= 384
            assert check.window_score == check.oracle_score
            # Raw CIGARs may tie-break differently; canonical forms match.
            assert check.identical
