"""Golden-snapshot regression tests for the machine-readable outputs.

Each test renders one of the CLI/export JSON documents, scrubs the
timing-dependent values (see ``sanitize_volatile`` in ``conftest.py``),
and compares the rest byte-for-byte against a committed snapshot in
``tests/golden/``.  A failure means the schema or the deterministic
content changed — either a regression, or an intentional change to bless
with ``pytest --update-golden``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_lint_json_golden(golden, capsys):
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    golden("lint_json", payload)


def test_chaos_report_golden(golden):
    from repro.resilience import run_campaign

    report = run_campaign(
        seed=7,
        faults=6,
        pairs=8,
        length=48,
        workers=1,
        shard_size=3,
        shard_timeout=2.0,
    )
    golden("chaos_report", report.to_dict())


@pytest.mark.slow
def test_experiment_all_golden(golden):
    """The exported artifact's shape: keys plus the status stamps.

    Experiment rows carry measured throughput (volatile by nature), so the
    snapshot pins the key set and the deterministic lint/resilience/
    observability blocks rather than the figures themselves.  The backends
    stamp is pinned through its host-independent fields only — which
    backends exist and that the differential verdict holds — because
    availability (numpy) varies with the host.
    """
    from repro.eval.export import run_all

    results = run_all(quick=True)
    backends = results["backends"]
    golden(
        "experiment_all",
        {
            "keys": sorted(results),
            "lint": results["lint"],
            "resilience": results["resilience"],
            "observability": results["observability"],
            "backends": {
                "registered": [
                    entry["name"] for entry in backends["registered"]
                ],
                "default": backends["default"],
                "identical": backends["identical"],
                "checked_pairs": backends["checked_pairs"],
            },
            "serving": {
                "identical": results["serving"]["identical"],
                "cache_identical": results["serving"]["cache_identical"],
                "pairs": results["serving"]["pairs"],
            },
        },
    )
