"""AlignmentService semantics: byte-identity, cache, dedup, admission."""

import multiprocessing
import threading
import time

import pytest

from repro.align import FullGmxAligner, align_batch
from repro.serve import (
    AlignmentService,
    ServeConfig,
    ServeError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.workloads import generate_pair_set

HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())

needs_processes = pytest.mark.skipif(
    not HAS_PROCESSES, reason="no multiprocessing start method available"
)


def _workload(count=16, length=90, seed=31):
    pair_set = generate_pair_set("service", length, 0.08, count, seed=seed)
    return [(p.pattern, p.text) for p in pair_set]


def _rows(results):
    return [(r.score, r.cigar, r.exact, r.text_start, r.text_end)
            for r in results]


class _GatedAligner(FullGmxAligner):
    """Aligner whose align() blocks until the test releases it."""

    def __init__(self, gate, **kwargs):
        super().__init__(**kwargs)
        self.gate = gate

    def align(self, pattern, text, traceback=True):
        self.gate.wait(timeout=30)
        return super().align(pattern, text, traceback=traceback)


class _PoisonAligner(FullGmxAligner):
    """Aligner that raises on a marker pattern (application-error drills)."""

    def align(self, pattern, text, traceback=True):
        if pattern == "POISON":
            raise ValueError("poisoned pair")
        return super().align(pattern, text, traceback=traceback)


class _SlowAligner(FullGmxAligner):
    """Picklable aligner slower than the service's dispatch deadline."""

    def align(self, pattern, text, traceback=True):
        time.sleep(0.5)
        return super().align(pattern, text, traceback=traceback)


def test_single_pair_matches_direct_alignment_including_stats():
    pattern, text = _workload(count=1)[0]
    direct = FullGmxAligner().align(pattern, text)
    config = ServeConfig(workers=1)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        served = service.align_pair(pattern, text)
    assert served.score == direct.score
    assert served.cigar == direct.cigar
    assert served.exact == direct.exact
    assert served.stats == direct.stats
    assert served.cached is False


def test_served_batch_identical_to_serial_batch():
    workload = _workload()
    serial = align_batch(FullGmxAligner(), workload)
    config = ServeConfig(workers=1)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        served = service.align_pairs(workload)
    assert _rows(served) == _rows(serial.results)
    assert [r.stats for r in served] == [r.stats for r in serial.results]


def test_eight_concurrent_threads_byte_identical():
    """The coalescing/caching acceptance bar: 8 threads, same bytes."""
    workload = _workload(count=12)
    serial_rows = _rows(align_batch(FullGmxAligner(), workload).results)
    config = ServeConfig(workers=1, coalesce_window=0.002)
    outcomes = {}
    errors = []
    with AlignmentService(FullGmxAligner(), config=config) as service:

        def client(index):
            try:
                # Each thread rotates the workload so requests interleave
                # differently — coalesced batches mix pairs from many
                # threads and later threads hit the cache.
                rotated = workload[index:] + workload[:index]
                results = service.align_pairs(rotated, timeout=120)
                restored = results[-index:] + results[:-index] if index else results
                outcomes[index] = _rows(restored)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((index, exc))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = service.metrics_snapshot()

    assert not errors, errors
    assert len(outcomes) == 8
    for rows in outcomes.values():
        assert rows == serial_rows
    # The overlap was actually served from cache/dedup, not recomputed 8x.
    requests = snapshot["requests"]
    assert requests["pairs"] == 8 * len(workload)
    assert requests["computed"] < requests["pairs"]
    assert requests["cached"] + requests["deduped"] > 0


def test_cache_hit_identical_to_cold_miss():
    workload = _workload(count=6)
    config = ServeConfig(workers=1)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        cold = service.align_pairs(workload)
        hot = service.align_pairs(workload)
        snapshot = service.metrics_snapshot()
    assert _rows(hot) == _rows(cold)
    assert [r.stats for r in hot] == [r.stats for r in cold]
    assert all(not r.cached for r in cold)
    assert all(r.cached for r in hot)
    assert snapshot["cache"]["hits"] == len(workload)
    assert snapshot["requests"]["computed"] == len(workload)


def test_cache_disabled_always_computes():
    workload = _workload(count=4)
    config = ServeConfig(workers=1, cache_size=0)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        first = service.align_pairs(workload)
        second = service.align_pairs(workload)
        snapshot = service.metrics_snapshot()
    assert _rows(first) == _rows(second)
    assert all(not r.cached for r in first + second)
    assert snapshot["requests"]["computed"] == 2 * len(workload)


def test_identical_inflight_requests_deduplicate():
    gate = threading.Event()
    pattern, text = _workload(count=1)[0]
    expected = FullGmxAligner().align(pattern, text)
    config = ServeConfig(workers=1, coalesce_window=0.0)
    service = AlignmentService(_GatedAligner(gate), config=config)
    with service:
        first = service.submit(pattern, text)
        # While the first computation is gated, identical submissions
        # attach to it instead of dispatching again.
        waiters = [service.submit(pattern, text) for _ in range(3)]
        gate.set()
        first_result = first.result(timeout=30)
        waiter_results = [w.result(timeout=30) for w in waiters]
    assert first_result.score == expected.score
    assert first_result.cached is False
    for result in waiter_results:
        assert (result.score, result.cigar) == (
            first_result.score, first_result.cigar
        )
        assert result.cached is True
    assert service.pairs_deduped == 3
    assert service.pairs_computed == 1


def test_admission_control_rejects_past_max_inflight():
    gate = threading.Event()
    workload = _workload(count=4, seed=37)
    config = ServeConfig(
        workers=1, cache_size=0, coalesce_window=0.0, max_inflight=2,
        retry_after=0.125,
    )
    service = AlignmentService(_GatedAligner(gate), config=config)
    with service:
        accepted = [
            service.submit(pattern, text) for pattern, text in workload[:2]
        ]
        with pytest.raises(ServiceSaturatedError) as excinfo:
            service.submit(*workload[2])
        assert excinfo.value.retry_after == 0.125
        assert service.pairs_rejected == 1
        gate.set()
        for future in accepted:
            future.result(timeout=30)
        # Draining the backlog reopens admission.
        late = service.align_pair(*workload[3], timeout=30)
    assert late.score is not None
    assert service.pairs_rejected == 1


def test_closed_service_rejects_requests():
    service = AlignmentService(FullGmxAligner(), config=ServeConfig(workers=1))
    with pytest.raises(ServiceClosedError):
        service.submit("ACGT", "ACGA")  # never started
    service.start()
    service.close()
    with pytest.raises(ServiceClosedError):
        service.submit("ACGT", "ACGA")
    service.close()  # idempotent


def test_non_string_pair_rejected():
    with AlignmentService(config=ServeConfig(workers=1)) as service:
        with pytest.raises(ServeError):
            service.submit(b"ACGT", "ACGA")


def test_invalid_max_inflight_rejected():
    with pytest.raises(ServeError):
        AlignmentService(config=ServeConfig(workers=1, max_inflight=0))


@needs_processes
def test_process_mode_identical_to_serial():
    workload = _workload(count=10, seed=41)
    serial = align_batch(FullGmxAligner(), workload)
    config = ServeConfig(workers=2, coalesce_max_pairs=4)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        assert service.pool.process_mode
        served = service.align_pairs(workload)
        health = service.health()
    assert _rows(served) == _rows(serial.results)
    assert [r.stats for r in served] == [r.stats for r in serial.results]
    assert health["executor"] in ("fork", "spawn", "forkserver")


def test_empty_pair_rejected_before_dispatch():
    """Empty sequences are a 400-class submit error, never a shard error."""
    with AlignmentService(config=ServeConfig(workers=1)) as service:
        for bad in (("", "ACGT"), ("ACGT", ""), ("", "")):
            with pytest.raises(ServeError):
                service.submit(*bad)
        # The rejections never reached a shard: nothing failed, nothing
        # recovered, and the service still serves.
        pattern, text = _workload(count=1)[0]
        result = service.align_pair(pattern, text)
        assert result.score == FullGmxAligner().align(pattern, text).score
        assert service.pairs_failed == 0
        assert service.shard_recoveries == 0
        assert service.pool.rebuilds == 0


def test_application_error_fails_batch_without_pool_rebuild():
    """A shard that ran and raised is an app error, not a lost worker."""
    workload = _workload(count=2, seed=43)
    config = ServeConfig(workers=1, cache_size=0, coalesce_window=0.0)
    with AlignmentService(_PoisonAligner(), config=config) as service:
        poisoned = service.submit("POISON", "ACGT")
        with pytest.raises(ValueError):
            poisoned.result(timeout=30)
        # No recovery theatre: the pool was healthy the whole time...
        assert service.shard_recoveries == 0
        assert service.pool.rebuilds == 0
        assert service.pairs_failed == 1
        # ...and unrelated requests are untouched.
        results = service.align_pairs(workload)
        assert len(results) == 2
        assert service.inflight_pairs == 0


def test_cancelled_future_does_not_kill_collector():
    """A client-side cancel must not crash the collector thread."""
    gate = threading.Event()
    workload = _workload(count=2, seed=47)
    config = ServeConfig(workers=1, cache_size=0, coalesce_window=0.0)
    service = AlignmentService(_GatedAligner(gate), config=config)
    with service:
        future = service.submit(*workload[0])
        future.cancel()
        gate.set()
        # The collector survived resolving a cancelled future: later
        # requests still complete instead of hanging until timeout.
        result = service.align_pair(*workload[1], timeout=30)
        assert result.score is not None
        for _ in range(200):
            if service.inflight_pairs == 0:
                break
            time.sleep(0.01)
        assert service.inflight_pairs == 0


def test_submit_rolls_back_admission_on_coalescer_failure():
    """A failed hand-off must release the admission slot it claimed."""
    service = AlignmentService(config=ServeConfig(workers=1))
    with service:
        pattern, text = _workload(count=1)[0]
        # Simulate the close() race: the coalescer stops accepting while
        # the service still believes it is open.
        service.coalescer.close()
        with pytest.raises(ServiceClosedError):
            service.submit(pattern, text)
        assert service.inflight_pairs == 0
        assert service._pending == {}


@needs_processes
def test_slow_healthy_shard_is_not_declared_lost():
    """Deadline expiry alone must not rebuild the pool: verify death."""
    config = ServeConfig(
        workers=2, cache_size=0, coalesce_window=0.0,
        dispatch_timeout=0.15, request_timeout=30.0,
    )
    with AlignmentService(_SlowAligner(), config=config) as service:
        if not service.pool.process_mode:
            pytest.skip("aligner did not reach process mode")
        pattern, text = _workload(count=1)[0]
        result = service.align_pair(pattern, text, timeout=30)
        assert result.score == FullGmxAligner().align(pattern, text).score
        # The shard blew through several dispatch deadlines while its
        # worker stayed alive — no spurious recovery, no rebuild.
        assert service.shard_recoveries == 0
        assert service.pool.rebuilds == 0


def test_unpicklable_aligner_falls_back_inline():
    gate = threading.Event()
    gate.set()
    # _GatedAligner carries a threading.Event — unpicklable, so a
    # multi-worker service must degrade to inline execution at init.
    config = ServeConfig(workers=4)
    with AlignmentService(_GatedAligner(gate), config=config) as service:
        assert not service.pool.process_mode
        assert service.fallback_reason is not None
        pattern, text = _workload(count=1)[0]
        result = service.align_pair(pattern, text)
        assert result.score == FullGmxAligner().align(pattern, text).score
        assert service.metrics_snapshot()["pool"]["fallback_reason"]
