"""Pool-teardown hygiene: worker span buffers survive into the parent trace.

The regression this file pins down: served requests run inside pool
worker processes, and the spans/metrics recorded there must be drained
from the workers and absorbed into the parent's recorder on every shard
completion — a served request must never lose its trace to a worker's
process exit.
"""

import json
import multiprocessing
import os

import pytest

from repro.align import FullGmxAligner
from repro.obs import runtime as obs
from repro.serve import AlignmentService, ServeConfig
from repro.workloads import generate_pair_set

HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())

needs_processes = pytest.mark.skipif(
    not HAS_PROCESSES, reason="no multiprocessing start method available"
)


def _workload(count=8, seed=61):
    pair_set = generate_pair_set("obs-drain", 64, 0.08, count, seed=seed)
    return [(p.pattern, p.text) for p in pair_set]


@needs_processes
def test_pooled_request_spans_survive_into_parent_trace():
    workload = _workload()
    config = ServeConfig(workers=2, coalesce_max_pairs=4)
    with obs.capture() as (recorder, registry):
        with AlignmentService(FullGmxAligner(), config=config) as service:
            assert service.pool.process_mode
            service.align_pairs(workload)
        spans = list(recorder.spans)
        trace_json = recorder.to_json()
        metrics = registry.snapshot().to_dict()

    shard_spans = [span for span in spans if span.name == "shard.align"]
    assert shard_spans, "worker shard spans were not absorbed by the parent"
    # The spans genuinely came from worker processes, not the parent.
    worker_pids = {span.pid for span in shard_spans}
    assert worker_pids and os.getpid() not in worker_pids
    # And they survive into the exported Chrome trace.
    exported = json.loads(trace_json)
    exported_names = {
        event.get("name") for event in exported["traceEvents"]
    }
    assert "shard.align" in exported_names
    # Worker-side kernel counters were absorbed into the parent registry.
    counters = metrics.get("counters", {})
    assert counters.get("batch.shards", 0) >= 2


@needs_processes
def test_inline_recovery_path_keeps_spans_local():
    """The crash-recovery inline re-run records on the parent directly."""
    workload = _workload(count=3, seed=67)
    config = ServeConfig(workers=1)
    with obs.capture() as (recorder, _registry):
        with AlignmentService(FullGmxAligner(), config=config) as service:
            service.align_pairs(workload)
        shard_spans = [
            span for span in recorder.spans if span.name == "shard.align"
        ]
    assert shard_spans
    assert {span.pid for span in shard_spans} == {os.getpid()}


def test_service_owns_obs_when_none_active():
    """Without an ambient recorder the service arms obs and tears it down."""
    assert not obs.enabled()
    service = AlignmentService(
        FullGmxAligner(), config=ServeConfig(workers=1)
    )
    service.start()
    assert obs.enabled()
    service.close()
    assert not obs.enabled()
