"""Coalescer micro-batching semantics: windows, caps, groups, failures."""

import threading
import time

import pytest

from repro.serve import Coalescer, CoalescerError, PendingPair


class _Sink:
    """Dispatch target recording batches and resolving their futures."""

    def __init__(self, fail=False):
        self.batches = []
        self.fail = fail
        self.event = threading.Event()

    def __call__(self, batch):
        self.batches.append([entry.pattern for entry in batch])
        if self.fail:
            raise RuntimeError("dispatch exploded")
        for entry in batch:
            entry.future.set_result(entry.pattern)
        self.event.set()


def _pair(pattern="A", group=True):
    return PendingPair(pattern=pattern, text=pattern, group=group)


def test_lone_request_dispatches_after_window():
    sink = _Sink()
    coalescer = Coalescer(sink, window_seconds=0.005, max_pairs=16).start()
    try:
        entry = _pair("solo")
        coalescer.submit(entry)
        assert entry.future.result(timeout=5.0) == "solo"
        assert sink.batches == [["solo"]]
    finally:
        coalescer.close()


def test_burst_coalesces_up_to_max_pairs():
    sink = _Sink()
    # A wide window so the whole burst lands inside one collection.
    coalescer = Coalescer(sink, window_seconds=0.25, max_pairs=4).start()
    try:
        entries = [_pair(f"p{i}") for i in range(10)]
        for entry in entries:
            coalescer.submit(entry)
        for entry in entries:
            entry.future.result(timeout=5.0)
    finally:
        coalescer.close()
    assert coalescer.pairs_out == 10
    assert all(len(batch) <= 4 for batch in sink.batches)
    assert max(len(batch) for batch in sink.batches) == 4
    assert coalescer.max_batch == 4
    # Order is preserved across batches.
    flattened = [name for batch in sink.batches for name in batch]
    assert flattened == [f"p{i}" for i in range(10)]


def test_group_change_flushes_current_batch():
    sink = _Sink()
    coalescer = Coalescer(sink, window_seconds=0.25, max_pairs=16).start()
    try:
        tb = [_pair("tb1", group=True), _pair("tb2", group=True)]
        dist = [_pair("d1", group=False)]
        for entry in tb + dist:
            coalescer.submit(entry)
        for entry in tb + dist:
            entry.future.result(timeout=5.0)
    finally:
        coalescer.close()
    assert ["tb1", "tb2"] in sink.batches
    assert ["d1"] in sink.batches


def test_dispatch_failure_routes_to_futures():
    sink = _Sink(fail=True)
    coalescer = Coalescer(sink, window_seconds=0.0, max_pairs=4).start()
    try:
        entry = _pair("boom")
        coalescer.submit(entry)
        with pytest.raises(RuntimeError, match="dispatch exploded"):
            entry.future.result(timeout=5.0)
        # The coalescer survives a failing dispatch.
        entry2 = _pair("after")
        coalescer.submit(entry2)
        with pytest.raises(RuntimeError):
            entry2.future.result(timeout=5.0)
    finally:
        coalescer.close()


def test_close_flushes_queued_requests():
    sink = _Sink()
    coalescer = Coalescer(sink, window_seconds=0.05, max_pairs=16)
    coalescer.start()
    entries = [_pair(f"q{i}") for i in range(3)]
    for entry in entries:
        coalescer.submit(entry)
    coalescer.close()
    for entry in entries:
        assert entry.future.result(timeout=1.0) == entry.pattern


def test_submit_after_close_raises():
    coalescer = Coalescer(_Sink(), window_seconds=0.0).start()
    coalescer.close()
    with pytest.raises(CoalescerError):
        coalescer.submit(_pair())


def test_invalid_configuration_rejected():
    with pytest.raises(CoalescerError):
        Coalescer(_Sink(), window_seconds=-0.001)
    with pytest.raises(CoalescerError):
        Coalescer(_Sink(), max_pairs=0)


def test_mean_batch_telemetry():
    sink = _Sink()
    coalescer = Coalescer(sink, window_seconds=0.25, max_pairs=2).start()
    try:
        entries = [_pair(f"m{i}") for i in range(4)]
        for entry in entries:
            coalescer.submit(entry)
        for entry in entries:
            entry.future.result(timeout=5.0)
        deadline = time.monotonic() + 5.0
        while coalescer.batches < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert coalescer.batches == 2
        assert coalescer.mean_batch == pytest.approx(2.0)
    finally:
        coalescer.close()
