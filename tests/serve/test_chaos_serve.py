"""Serving-path chaos: a killed pool worker must not lose a request."""

import multiprocessing

import pytest

from repro.serve.chaos import run_serve_chaos

HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())


@pytest.mark.chaos
def test_worker_kill_mid_request_still_completes():
    report = run_serve_chaos(
        seed=7, pairs=24, workers=2, dispatch_timeout=3.0
    )
    assert report.ok
    assert report.identical
    assert report.completed == 24
    if HAS_PROCESSES:
        assert report.killed_pid is not None
        # The lost shard was detected and re-executed.
        assert report.recoveries >= 1
        assert report.pool_generation >= 2
    else:
        assert report.degraded_reason


@pytest.mark.chaos
def test_inline_degrade_reports_honestly():
    report = run_serve_chaos(seed=11, pairs=8, workers=1)
    assert report.ok
    assert report.identical
    assert report.killed_pid is None
    assert report.degraded_reason
    assert report.to_dict()["executor"] == "serial"
