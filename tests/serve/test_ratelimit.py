"""Per-client token-bucket rate limiting: bucket math + HTTP 429 surface."""

import http.client
import json
from urllib.parse import urlsplit

import pytest

from repro.align import FullGmxAligner
from repro.serve import AlignmentService, ServeConfig, running_server
from repro.serve.ratelimit import RateLimitedError, RateLimiter
from repro.workloads import generate_pair_set


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBucketMath:
    def test_burst_then_rejection(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=2.0, clock=clock)
        limiter.check("alice")
        limiter.check("alice")
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.check("alice")
        assert excinfo.value.client == "alice"
        assert excinfo.value.retry_after == pytest.approx(1.0)

    def test_refill_restores_admission(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=2.0, clock=clock)
        limiter.check("alice", cost=2)
        with pytest.raises(RateLimitedError):
            limiter.check("alice")
        clock.advance(0.5)  # 0.5s * 2/s = 1 token back
        limiter.check("alice")

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=4.0, burst=1.0, clock=clock)
        limiter.check("alice")
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.check("alice")
        # 1 token needed at 4 tokens/s -> 0.25s.
        assert excinfo.value.retry_after == pytest.approx(0.25)
        clock.advance(0.25)
        limiter.check("alice")

    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check("alice")
        limiter.check("bob")  # bob's bucket is untouched by alice's spend
        with pytest.raises(RateLimitedError):
            limiter.check("alice")

    def test_oversized_cost_admitted_when_full(self):
        # A batch costing more than burst must be servable: the price is
        # capped at burst and the bucket goes into debt.
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=4.0, clock=clock)
        limiter.check("alice", cost=10)
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.check("alice")
        # Bucket is at -6; needs 7 tokens for a cost-1 request at 1/s.
        assert excinfo.value.retry_after == pytest.approx(7.0)

    def test_tokens_never_exceed_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=10.0, burst=2.0, clock=clock)
        limiter.check("alice")
        clock.advance(60.0)  # idle for a minute: still capped at burst
        limiter.check("alice", cost=2)
        with pytest.raises(RateLimitedError):
            limiter.check("alice")

    def test_zero_or_negative_cost_counts_as_one(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check("alice", cost=0)
        with pytest.raises(RateLimitedError):
            limiter.check("alice", cost=-3)

    def test_invalid_configuration_rejected(self):
        from repro.serve import ServeError

        with pytest.raises(ServeError, match="rate must be positive"):
            RateLimiter(rate=0.0, burst=1.0)
        with pytest.raises(ServeError, match="burst must be positive"):
            RateLimiter(rate=1.0, burst=0.0)

    def test_lru_eviction_caps_tracked_clients(self, monkeypatch):
        from repro.serve import ratelimit

        monkeypatch.setattr(ratelimit, "MAX_TRACKED_CLIENTS", 3)
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        for client in ("a", "b", "c", "d"):
            limiter.check(client)
        snapshot = limiter.snapshot()
        assert snapshot["clients"] == 3  # "a" was evicted
        # The evicted client returns with a fresh (full) bucket.
        limiter.check("a")

    def test_snapshot_counters(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check("alice")
        with pytest.raises(RateLimitedError):
            limiter.check("alice")
        snapshot = limiter.snapshot()
        assert snapshot["allowed"] == 1
        assert snapshot["rejected"] == 1
        assert snapshot["rate_per_second"] == 1.0
        assert snapshot["burst"] == 1.0


class _Client:
    """JSON client that can set per-request headers (X-Client-Id)."""

    def __init__(self, base_url):
        parts = urlsplit(base_url)
        self.conn = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=30
        )

    def post(self, path, payload, *, headers=None):
        merged = {"Content-Type": "application/json"}
        merged.update(headers or {})
        self.conn.request(
            "POST", path, body=json.dumps(payload).encode("utf-8"),
            headers=merged,
        )
        response = self.conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), (
            json.loads(body) if body else None
        )

    def get(self, path):
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), (
            json.loads(body) if body else None
        )

    def close(self):
        self.conn.close()


@pytest.fixture()
def limited_server():
    config = ServeConfig(
        workers=1,
        coalesce_window=0.001,
        cache_size=0,  # cache hits would mask admission decisions
        rate_limit_rps=0.5,
        rate_limit_burst=2.0,
    )
    with AlignmentService(FullGmxAligner(), config=config) as service:
        with running_server(service) as (_server, base_url):
            client = _Client(base_url)
            yield client, service
            client.close()


def _body(seed=61):
    pair = list(generate_pair_set("ratelimit", 48, 0.05, 1, seed=seed))[0]
    return {"pattern": pair.pattern, "text": pair.text}


class TestHttpRateLimiting:
    def test_burst_then_429_with_retry_after(self, limited_server):
        client, _service = limited_server
        headers = {"X-Client-Id": "hammer"}
        for seed in (1, 2):  # burst capacity
            status, _h, _p = client.post(
                "/align", _body(seed), headers=headers
            )
            assert status == 200
        status, resp_headers, payload = client.post(
            "/align", _body(3), headers=headers
        )
        assert status == 429
        assert "rate-limited" in payload["error"]
        retry_after = float(resp_headers["Retry-After"])
        assert retry_after > 0.0

    def test_clients_keyed_by_header(self, limited_server):
        client, _service = limited_server
        for index in range(2):
            status, _h, _p = client.post(
                "/align", _body(index), headers={"X-Client-Id": "a"}
            )
            assert status == 200
        # "a" is exhausted, but "b" has a full bucket of its own.
        status, _h, _p = client.post(
            "/align", _body(7), headers={"X-Client-Id": "b"}
        )
        assert status == 200

    def test_missing_header_falls_back_to_peer_address(self, limited_server):
        client, service = limited_server
        status, _h, _p = client.post("/align", _body(11))
        assert status == 200
        snapshot = service.metrics_snapshot()["rate_limit"]
        assert snapshot["clients"] >= 1

    def test_metrics_expose_rate_limit_counters(self, limited_server):
        client, _service = limited_server
        headers = {"X-Client-Id": "metered"}
        for seed in (1, 2):
            client.post("/align", _body(seed), headers=headers)
        client.post("/align", _body(3), headers=headers)  # rejected
        status, _h, metrics = client.get("/metrics")
        assert status == 200
        block = metrics["rate_limit"]
        assert block["rejected"] >= 1
        assert block["rate_per_second"] == 0.5


def test_rate_limiting_off_by_default():
    config = ServeConfig(workers=1, coalesce_window=0.001)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        assert service.rate_limiter is None
        assert service.metrics_snapshot()["rate_limit"] == {
            "rate_per_second": 0.0
        }
