"""HTTP facade: endpoints, validation, saturation back-pressure."""

import http.client
import json
import threading
from urllib.parse import urlsplit

import pytest

from repro.align import FullGmxAligner
from repro.serve import AlignmentService, ServeConfig, running_server
from repro.workloads import generate_pair_set


def _workload(count=6, seed=51):
    pair_set = generate_pair_set("http", 72, 0.08, count, seed=seed)
    return [(p.pattern, p.text) for p in pair_set]


class _Client:
    """Minimal JSON client over one keep-alive connection."""

    def __init__(self, base_url):
        parts = urlsplit(base_url)
        self.conn = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=30
        )

    def get(self, path):
        self.conn.request("GET", path)
        return self._read()

    def post(self, path, payload, *, raw=None):
        body = raw if raw is not None else json.dumps(payload).encode("utf-8")
        self.conn.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json"},
        )
        return self._read()

    def _read(self):
        response = self.conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), (
            json.loads(body) if body else None
        )

    def close(self):
        self.conn.close()


@pytest.fixture()
def server():
    config = ServeConfig(workers=1, coalesce_window=0.001)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        with running_server(service) as (_server, base_url):
            client = _Client(base_url)
            yield client, service, base_url
            client.close()


def test_align_single_pair(server):
    client, _service, _url = server
    pattern, text = _workload(count=1)[0]
    expected = FullGmxAligner().align(pattern, text)
    status, _headers, payload = client.post(
        "/align", {"pattern": pattern, "text": text}
    )
    assert status == 200
    assert payload["pairs"] == 1
    row = payload["results"][0]
    assert row["score"] == expected.score
    assert row["cigar"] == expected.cigar
    assert row["cached"] is False


def test_align_pairs_form_preserves_order(server):
    client, _service, _url = server
    workload = _workload(count=5)
    expected = [FullGmxAligner().align(p, t) for p, t in workload]
    status, _headers, payload = client.post(
        "/align", {"pairs": [list(pair) for pair in workload]}
    )
    assert status == 200
    assert payload["pairs"] == len(workload)
    assert [row["score"] for row in payload["results"]] == [
        r.score for r in expected
    ]
    assert [row["cigar"] for row in payload["results"]] == [
        r.cigar for r in expected
    ]


def test_align_distance_only(server):
    client, _service, _url = server
    pattern, text = _workload(count=1)[0]
    status, _headers, payload = client.post(
        "/align", {"pattern": pattern, "text": text, "traceback": False}
    )
    assert status == 200
    assert payload["results"][0]["cigar"] == ""


def test_repeat_request_served_from_cache(server):
    client, _service, _url = server
    pattern, text = _workload(count=1)[0]
    request = {"pattern": pattern, "text": text}
    _status, _headers, cold = client.post("/align", request)
    status, _headers, hot = client.post("/align", request)
    assert status == 200
    assert hot["results"][0]["cached"] is True
    assert (hot["results"][0]["score"], hot["results"][0]["cigar"]) == (
        cold["results"][0]["score"], cold["results"][0]["cigar"]
    )


def test_health_endpoint(server):
    client, service, _url = server
    status, _headers, payload = client.get("/health")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["workers"] == service.pool.workers
    assert payload["executor"] == service.pool.executor


def test_metrics_endpoint_exposes_cache_queue_and_obs(server):
    client, _service, _url = server
    pattern, text = _workload(count=1)[0]
    client.post("/align", {"pattern": pattern, "text": text})
    client.post("/align", {"pattern": pattern, "text": text})
    status, _headers, payload = client.get("/metrics")
    assert status == 200
    assert payload["cache"]["hits"] >= 1
    assert 0.0 < payload["cache"]["hit_rate"] <= 1.0
    assert payload["queue"]["max_inflight"] == 256
    assert "inflight_pairs" in payload["queue"]
    assert payload["requests"]["pairs"] >= 2
    # The obs metrics registry rides along (serve.* counters live there).
    counters = payload["metrics"].get("counters", {})
    assert any(name.startswith("serve.") for name in counters)


def test_unknown_path_404(server):
    client, _service, _url = server
    status, _headers, payload = client.get("/nope")
    assert status == 404
    status, _headers, payload = client.post("/nope", {})
    assert status == 404


def test_malformed_json_400(server):
    client, _service, _url = server
    status, _headers, payload = client.post("/align", None, raw=b"{nope")
    assert status == 400
    assert "error" in payload


def test_missing_fields_400(server):
    client, _service, _url = server
    for bad in ({}, {"pattern": "ACGT"}, {"pairs": []}, {"pairs": [["a"]]},
                {"pattern": "ACGT", "text": 7}):
        status, _headers, payload = client.post("/align", bad)
        assert status == 400, bad
        assert "error" in payload


def test_empty_sequences_400(server):
    """Empty pattern/text must be rejected at the door, not in a shard."""
    client, service, _url = server
    for bad in ({"pattern": "", "text": "ACGT"},
                {"pattern": "ACGT", "text": ""},
                {"pairs": [["", "ACGT"]]},
                {"pairs": [["ACGT", ""]]}):
        status, _headers, payload = client.post("/align", bad)
        assert status == 400, bad
        assert "error" in payload
    # The rejects never became shard work or recoveries.
    assert service.pairs_failed == 0
    assert service.shard_recoveries == 0


def test_request_timeout_returns_504(server):
    client, service, _url = server
    pattern, text = _workload(count=1)[0]
    original = service.align_pairs

    def timing_out(*args, **kwargs):
        import concurrent.futures

        raise concurrent.futures.TimeoutError()

    service.align_pairs = timing_out
    try:
        status, _headers, payload = client.post(
            "/align", {"pattern": pattern, "text": text}
        )
    finally:
        service.align_pairs = original
    assert status == 504
    assert "error" in payload


def test_unexpected_error_returns_500_not_dropped_connection(server):
    client, service, _url = server
    pattern, text = _workload(count=1)[0]
    original = service.align_pairs

    def exploding(*args, **kwargs):
        raise RuntimeError("boom")

    service.align_pairs = exploding
    try:
        status, _headers, payload = client.post(
            "/align", {"pattern": pattern, "text": text}
        )
    finally:
        service.align_pairs = original
    assert status == 500
    assert "boom" in payload["error"]


def test_saturation_returns_429_with_retry_after():
    gate = threading.Event()

    class Gated(FullGmxAligner):
        def align(self, pattern, text, traceback=True):
            gate.wait(timeout=30)
            return super().align(pattern, text, traceback=traceback)

    config = ServeConfig(
        workers=1, cache_size=0, coalesce_window=0.0, max_inflight=1,
        retry_after=0.5,
    )
    workload = _workload(count=3, seed=53)
    with AlignmentService(Gated(), config=config) as service:
        with running_server(service) as (_server, base_url):
            blocker = _Client(base_url)
            prober = _Client(base_url)
            try:
                # Fill the single admission slot from a background thread
                # (the request blocks inside the gated aligner).
                background = threading.Thread(
                    target=blocker.post,
                    args=("/align",
                          {"pattern": workload[0][0], "text": workload[0][1]}),
                )
                background.start()
                deadline = threading.Event()
                # Wait until the pair is actually in flight.
                for _ in range(200):
                    if service.inflight_pairs >= 1:
                        break
                    deadline.wait(0.01)
                status, headers, payload = prober.post(
                    "/align",
                    {"pattern": workload[1][0], "text": workload[1][1]},
                )
                assert status == 429
                assert headers.get("Retry-After") == "0.500"
                assert payload["retry_after"] == 0.5
                gate.set()
                background.join(timeout=30)
            finally:
                gate.set()
                blocker.close()
                prober.close()
