"""Load smoke: 200+ mixed hit/miss requests, clean shutdown, no leaks."""

import multiprocessing

import pytest

from repro.serve.bench import percentile, run_serve_bench


def test_percentile_nearest_rank():
    samples = [10, 20, 30, 40, 50]
    assert percentile(samples, 0.0) == 10
    assert percentile(samples, 0.5) == 30
    assert percentile(samples, 1.0) == 50
    assert percentile([], 0.5) == 0


@pytest.mark.slow
def test_load_smoke_mixed_hit_miss_clean_shutdown():
    report = run_serve_bench(
        requests=200,
        clients=8,
        unique_pairs=24,
        length=96,           # shorter pairs keep the smoke fast
        workers=2 if multiprocessing.get_all_start_methods() else 1,
        warm_cold_probes=0,  # latency percentiles only; no cold pools
    )
    assert report.errors == 0
    assert len(report.latencies_ns) == 200
    # The schedule guarantees repeats: both hits and misses must appear.
    # (Misses can exceed the unique-pair count: a lookup racing an
    # identical in-flight pair counts a miss, then deduplicates.)
    assert report.cache["hits"] > 0
    assert report.cache["misses"] >= 24
    assert report.cache["size"] == 24
    # Every request was accounted for, nothing rejected at this depth.
    accounting = report.requests_accounting
    assert accounting["rejected"] == 0
    assert accounting["failed"] == 0
    assert accounting["pairs"] == 200
    assert (
        accounting["computed"] + accounting["cached"] + accounting["deduped"]
        == 200
    )
    # Clean shutdown: the warm pool's workers are gone.
    assert report.leaked_workers == 0
    data = report.to_dict()
    assert data["latency"]["p50_ms"] > 0
    assert data["latency"]["p99_ms"] >= data["latency"]["p50_ms"]
    assert data["throughput_rps"] > 0
