"""Content-addressed cache: key identity, LRU determinism, counters."""

import pytest

from repro.align import BandedGmxAligner, FullGmxAligner
from repro.serve import (
    AlignmentCache,
    CachedAlignment,
    CacheError,
    aligner_fingerprint,
    pair_key,
)


def _entry(score=3, cigar="4M1X"):
    result = FullGmxAligner().align("ACGTA", "ACGTT")
    return CachedAlignment.from_result(result)


class TestFingerprint:
    def test_same_configuration_same_fingerprint(self):
        a = FullGmxAligner(tile_size=16)
        b = FullGmxAligner(tile_size=16)
        assert aligner_fingerprint(a) == aligner_fingerprint(b)

    def test_tile_size_changes_fingerprint(self):
        assert aligner_fingerprint(FullGmxAligner(tile_size=16)) != (
            aligner_fingerprint(FullGmxAligner(tile_size=32))
        )

    def test_class_changes_fingerprint(self):
        assert aligner_fingerprint(FullGmxAligner()) != (
            aligner_fingerprint(BandedGmxAligner())
        )


class TestPairKey:
    def test_stable(self):
        fp = aligner_fingerprint(FullGmxAligner())
        assert pair_key("ACGT", "ACGA", fingerprint=fp) == pair_key(
            "ACGT", "ACGA", fingerprint=fp
        )

    def test_sequences_distinguish(self):
        fp = aligner_fingerprint(FullGmxAligner())
        base = pair_key("ACGT", "ACGA", fingerprint=fp)
        assert pair_key("ACGA", "ACGT", fingerprint=fp) != base
        assert pair_key("ACGT", "ACGAA", fingerprint=fp) != base

    def test_traceback_mode_distinguishes(self):
        fp = aligner_fingerprint(FullGmxAligner())
        assert pair_key("ACGT", "ACGA", fingerprint=fp, traceback=True) != (
            pair_key("ACGT", "ACGA", fingerprint=fp, traceback=False)
        )

    def test_fingerprint_distinguishes(self):
        fp_a = aligner_fingerprint(FullGmxAligner(tile_size=8))
        fp_b = aligner_fingerprint(FullGmxAligner(tile_size=16))
        assert pair_key("ACGT", "ACGA", fingerprint=fp_a) != (
            pair_key("ACGT", "ACGA", fingerprint=fp_b)
        )


class TestCache:
    def test_hit_returns_stored_entry(self):
        cache = AlignmentCache(4)
        entry = _entry()
        cache.store("k1", entry)
        assert cache.lookup("k1") is entry
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = AlignmentCache(4)
        assert cache.lookup("absent") is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_deterministic_lru_eviction_order(self):
        cache = AlignmentCache(3)
        entry = _entry()
        for key in ("a", "b", "c"):
            cache.store(key, entry)
        cache.lookup("a")  # a becomes most-recently-used
        cache.store("d", entry)  # evicts b (the least recently used)
        assert cache.keys() == ["c", "a", "d"]
        assert cache.evictions == 1
        cache.store("e", entry)  # evicts c
        assert cache.keys() == ["a", "d", "e"]
        assert cache.evictions == 2

    def test_replayed_sequence_evicts_identically(self):
        def replay():
            cache = AlignmentCache(2)
            entry = _entry()
            operations = [
                ("store", "x"), ("store", "y"), ("lookup", "x"),
                ("store", "z"), ("lookup", "y"), ("store", "w"),
            ]
            for op, key in operations:
                if op == "store":
                    cache.store(key, entry)
                else:
                    cache.lookup(key)
            return cache.keys(), cache.hits, cache.misses, cache.evictions

        assert replay() == replay()

    def test_capacity_zero_disables(self):
        cache = AlignmentCache(0)
        cache.store("k", _entry())
        assert len(cache) == 0
        assert cache.lookup("k") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            AlignmentCache(-1)

    def test_stats_copy_is_independent(self):
        entry = _entry()
        copy = entry.stats_copy()
        copy.dp_cells += 1000
        assert entry.stats.dp_cells != copy.dp_cells
        assert entry.stats_copy() == entry.stats

    def test_hit_rate(self):
        cache = AlignmentCache(4)
        cache.store("k", _entry())
        cache.lookup("k")
        cache.lookup("k")
        cache.lookup("missing")
        assert cache.hit_rate == pytest.approx(2 / 3)
        snapshot = cache.snapshot()
        assert snapshot["hits"] == 2 and snapshot["misses"] == 1
        assert snapshot["size"] == 1 and snapshot["capacity"] == 4
