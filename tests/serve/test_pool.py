"""WorkerPool lifecycle: warm reuse, rebuild, close, batch-API sharing."""

import multiprocessing

import pytest

from repro.align import FullGmxAligner, PoolError, WorkerPool, align_batch
from repro.align.parallel import _align_shard, align_batch_sharded
from repro.workloads import generate_pair_set

HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())

needs_processes = pytest.mark.skipif(
    not HAS_PROCESSES, reason="no multiprocessing start method available"
)


def _payload(pairs=2):
    pair_set = generate_pair_set("pool", 48, 0.1, pairs, seed=3)
    shard = [(p.pattern, p.text) for p in pair_set]
    return (FullGmxAligner(), shard, True, False, False)


class TestInlinePool:
    def test_single_worker_is_inline(self):
        pool = WorkerPool(1)
        assert not pool.process_mode
        assert pool.executor == "serial"
        assert pool.method is None
        assert pool.worker_pids() == []

    def test_submit_executes_inline(self):
        with WorkerPool(1) as pool:
            handle = pool.submit(_align_shard, _payload())
            assert handle.ready()
            results, stats, _, worker, _ = handle.get()
            assert len(results) == 2
            assert worker.startswith("pid:")

    def test_inline_error_raised_from_get(self):
        def boom(payload):
            raise ValueError("inline failure")

        with WorkerPool(1) as pool:
            handle = pool.submit(boom, None)
            with pytest.raises(ValueError, match="inline failure"):
                handle.get()


class TestPoolLifecycle:
    def test_closed_pool_rejects_submissions(self):
        pool = WorkerPool(1)
        pool.close()
        assert pool.closed
        with pytest.raises(PoolError):
            pool.submit(_align_shard, _payload())

    def test_close_is_idempotent(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()

    @needs_processes
    def test_warm_start_pays_generation_once(self):
        with WorkerPool(2) as pool:
            assert pool.process_mode
            assert pool.generation == 1
            pool.start()  # idempotent
            assert pool.generation == 1
            pids = pool.worker_pids()
            assert len(pids) == 2
            for _ in range(3):
                pool.submit(_align_shard, _payload()).get(timeout=60)
            # Reuse never recreated the pool.
            assert pool.generation == 1
            assert pool.worker_pids() == pids

    @needs_processes
    def test_rebuild_replaces_workers(self):
        with WorkerPool(2) as pool:
            before = set(pool.worker_pids())
            pool.rebuild()
            assert pool.rebuilds == 1
            assert pool.generation == 2
            after = set(pool.worker_pids())
            assert after and after.isdisjoint(before)
            results, *_ = pool.submit(_align_shard, _payload()).get(timeout=60)
            assert len(results) == 2


class TestSharedPoolBatchAPI:
    """align_batch_sharded rides an external warm pool without owning it."""

    @needs_processes
    def test_external_pool_results_identical_and_pool_survives(self):
        pair_set = generate_pair_set("shared", 72, 0.08, 10, seed=21)
        pairs = [(p.pattern, p.text) for p in pair_set]
        aligner = FullGmxAligner()
        serial = align_batch(aligner, pairs)

        with WorkerPool(2) as pool:
            generation = pool.generation
            first = align_batch_sharded(
                aligner, pairs, shard_size=3, pool=pool
            )
            second = align_batch_sharded(
                aligner, pairs, shard_size=3, pool=pool
            )
            # The batch borrowed the pool: no churn, still open.
            assert pool.generation == generation
            assert not pool.closed

        for batch in (first, second):
            assert [(r.score, r.cigar) for r in batch.results] == [
                (r.score, r.cigar) for r in serial.results
            ]
            assert batch.stats == serial.stats
            assert batch.telemetry.executor == pool.method

    def test_inline_external_pool_falls_back_serially(self):
        pair_set = generate_pair_set("shared-inline", 48, 0.08, 6, seed=22)
        pairs = [(p.pattern, p.text) for p in pair_set]
        aligner = FullGmxAligner()
        serial = align_batch(aligner, pairs)
        with WorkerPool(1) as pool:
            batch = align_batch_sharded(aligner, pairs, pool=pool)
        assert [(r.score, r.cigar) for r in batch.results] == [
            (r.score, r.cigar) for r in serial.results
        ]
        assert batch.telemetry.executor == "serial"

    @needs_processes
    def test_closed_external_pool_degrades_inline(self):
        pair_set = generate_pair_set("shared-closed", 48, 0.08, 4, seed=23)
        pairs = [(p.pattern, p.text) for p in pair_set]
        aligner = FullGmxAligner()
        pool = WorkerPool(2)
        pool.close()
        batch = align_batch_sharded(aligner, pairs, pool=pool)
        serial = align_batch(aligner, pairs)
        assert [(r.score, r.cigar) for r in batch.results] == [
            (r.score, r.cigar) for r in serial.results
        ]
        assert batch.telemetry.executor == "inline"
