"""WorkerPool generation/rebuild races under concurrent submitters.

A rebuild abandons in-flight handles of the old pool by contract; these
tests pin what *must* survive the race: the pool object itself stays
usable, the generation counter moves monotonically, and post-rebuild
submissions produce correct results — whatever the interleaving.
"""

import multiprocessing
import threading
import time

import pytest

from repro.align import FullGmxAligner, PoolError, WorkerPool
from repro.align.parallel import _align_shard
from repro.workloads import generate_pair_set

HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())

needs_processes = pytest.mark.skipif(
    not HAS_PROCESSES, reason="no multiprocessing start method available"
)


def _payload(pairs=2, seed=3):
    pair_set = generate_pair_set("pool-race", 40, 0.1, pairs, seed=seed)
    shard = [(p.pattern, p.text) for p in pair_set]
    return (FullGmxAligner(), shard, True, False, False)


@needs_processes
@pytest.mark.slow
class TestRebuildRaces:
    def test_concurrent_submitters_during_rebuild(self):
        """Submits racing a rebuild either complete or are abandoned —
        never wedge the pool or corrupt another submitter's result."""
        pool = WorkerPool(2)
        payload = _payload()
        expected = _align_shard(payload)[0]
        stop = threading.Event()
        outcomes = []
        lock = threading.Lock()

        def submitter():
            while not stop.is_set():
                try:
                    handle = pool.submit(_align_shard, payload)
                    results = handle.get(timeout=5.0)[0]
                except multiprocessing.TimeoutError:
                    with lock:
                        outcomes.append("abandoned")
                    continue
                except (PoolError, OSError, EOFError, BrokenPipeError):
                    # The submit crossed a teardown window; acceptable.
                    with lock:
                        outcomes.append("torn")
                    continue
                assert results == expected  # a reply is never corrupted
                with lock:
                    outcomes.append("ok")

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        try:
            with pool:
                for thread in threads:
                    thread.start()
                for _ in range(3):
                    time.sleep(0.2)  # let submits land mid-generation
                    pool.rebuild()
                # Wait for at least one post-rebuild round trip before
                # stopping, so the test proves recovery, not just survival.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    with lock:
                        if "ok" in outcomes:
                            break
                    time.sleep(0.05)
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert not any(t.is_alive() for t in threads)
                assert pool.rebuilds == 3
                assert pool.generation == 4  # initial warm + 3 rebuilds
                # The pool survived the race: a fresh submit still works.
                handle = pool.submit(_align_shard, payload)
                assert handle.get(timeout=30.0)[0] == expected
        finally:
            stop.set()
            pool.close()
        assert outcomes.count("ok") >= 1

    def test_generation_visible_to_concurrent_readers(self):
        """Generation observed by racing readers only ever increases."""
        pool = WorkerPool(2)
        observed = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                observed.append(pool.generation)

        thread = threading.Thread(target=reader)
        try:
            with pool:
                thread.start()
                for _ in range(3):
                    time.sleep(0.05)
                    pool.rebuild()
                final = pool.generation
                stop.set()
                thread.join(timeout=10.0)
        finally:
            stop.set()
            pool.close()
        assert final == 4  # initial warm + 3 rebuilds
        assert observed == sorted(observed)  # never goes backwards
        assert observed[-1] <= final

    def test_rebuild_after_close_stays_closed(self):
        pool = WorkerPool(2)
        pool.start()
        pool.close()
        pool.rebuild()  # must not resurrect a closed pool
        assert pool.closed
        with pytest.raises(PoolError):
            pool.submit(_align_shard, _payload())

    def test_concurrent_rebuilds_are_serialized(self):
        """N racing rebuild() calls leave exactly one live pool."""
        pool = WorkerPool(2)
        barrier = threading.Barrier(3)

        def rebuilder():
            barrier.wait()
            pool.rebuild()

        threads = [threading.Thread(target=rebuilder) for _ in range(3)]
        try:
            with pool:
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert pool.rebuilds == 3
                payload = _payload()
                handle = pool.submit(_align_shard, payload)
                expected = _align_shard(payload)[0]
                assert handle.get(timeout=30.0)[0] == expected
        finally:
            pool.close()


class TestInlineRebuild:
    def test_inline_pool_rebuild_is_noop_but_safe(self):
        pool = WorkerPool(1)
        payload = _payload()
        expected = _align_shard(payload)[0]
        with pool:
            assert pool.submit(_align_shard, payload).get()[0] == expected
            pool.rebuild()
            assert pool.rebuilds == 0  # nothing to tear down inline
            assert pool.submit(_align_shard, payload).get()[0] == expected
