"""CLI error-path contract: bad input exits 2 with a message on stderr.

Every failure mode a user can hit from the shell — bad flags, missing
files, malformed datasets, unknown names — must (a) return exit code 2,
(b) say what went wrong on stderr, and (c) never dump a traceback.
``main`` is called in-process so the tests assert on the real return
value and captured streams.
"""

from __future__ import annotations

import pytest

from repro.cli import main


def run(argv, capsys):
    """Invoke the CLI; returns (exit_code, stdout, stderr)."""
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBadFlags:
    def test_negative_workers(self, capsys):
        code, _, err = run(["align", "A", "C", "--workers", "-3"], capsys)
        assert code == 2
        assert "--workers" in err

    def test_zero_shard_size(self, capsys):
        code, _, err = run(
            ["align", "A", "C", "--shard-size", "0", "--workers", "2"], capsys
        )
        assert code == 2
        assert "--shard-size" in err

    def test_missing_operands(self, capsys):
        code, _, err = run(["align"], capsys)
        assert code == 2
        assert "PATTERN TEXT or --pairs" in err

    def test_unknown_command(self, capsys):
        code, _, err = run(["frobnicate"], capsys)
        assert code == 2
        assert "invalid choice" in err

    def test_unknown_experiment_name(self, capsys):
        code, _, err = run(["experiment", "no-such-figure"], capsys)
        assert code == 2
        assert "invalid choice" in err

    def test_unknown_algorithm(self, capsys):
        code, _, err = run(["align", "A", "C", "--algorithm", "magic"], capsys)
        assert code == 2
        assert "invalid choice" in err

    def test_help_exits_zero(self, capsys):
        code, out, _ = run(["--help"], capsys)
        assert code == 0
        assert "align" in out


class TestBadFiles:
    def test_missing_pairs_file(self, capsys, tmp_path):
        missing = tmp_path / "nope.seq"
        code, _, err = run(["align", "--pairs", str(missing)], capsys)
        assert code == 2
        assert "nope.seq" in err
        assert "Traceback" not in err

    def test_malformed_pairs_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.seq"
        bad.write_text("this is not a sequence record\n")
        code, _, err = run(["align", "--pairs", str(bad)], capsys)
        assert code == 2
        assert "line must start with" in err

    def test_empty_pairs_file(self, capsys, tmp_path):
        empty = tmp_path / "empty.seq"
        empty.write_text("")
        code, _, err = run(["align", "--pairs", str(empty)], capsys)
        assert code == 2
        assert "no sequence pairs" in err

    def test_unwritable_checkpoint_path(self, capsys, tmp_path):
        pairs = tmp_path / "ok.seq"
        pairs.write_text(">ACGT\n<ACGA\n")
        checkpoint = tmp_path / "no-such-dir" / "x.journal"
        code, _, err = run(
            ["align", "--pairs", str(pairs), "--checkpoint", str(checkpoint)],
            capsys,
        )
        assert code == 2
        assert "error" in err

    def test_missing_lint_program_file(self, capsys, tmp_path):
        code, _, err = run(
            ["lint", "--program", str(tmp_path / "ghost.hex")], capsys
        )
        assert code == 2
        assert "ghost.hex" in err

    def test_non_hex_lint_program_file(self, capsys, tmp_path):
        listing = tmp_path / "garbage.hex"
        listing.write_text("zz not hex zz\n")
        code, _, err = run(["lint", "--program", str(listing)], capsys)
        assert code == 2
        assert "not a hex program listing" in err


class TestProfileErrors:
    def test_profile_without_command(self, capsys):
        code, _, err = run(["profile"], capsys)
        assert code == 2
        assert "nothing to profile" in err

    def test_profile_of_profile_rejected(self, capsys):
        code, _, err = run(
            ["profile", "--", "profile", "--", "align", "A", "A"], capsys
        )
        assert code == 2
        assert "cannot profile the profiler" in err

    def test_diff_with_missing_file(self, capsys, tmp_path):
        code, _, err = run(
            [
                "profile",
                "--diff",
                str(tmp_path / "a.json"),
                str(tmp_path / "b.json"),
            ],
            capsys,
        )
        assert code == 2
        assert "a.json" in err

    def test_diff_with_malformed_profile(self, capsys, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        code, _, err = run(
            ["profile", "--diff", str(broken), str(broken)], capsys
        )
        assert code == 2
        assert "broken.json" in err

    def test_inner_command_error_propagates(self, capsys):
        code, _, err = run(["profile", "--", "align"], capsys)
        assert code == 2
        assert "PATTERN TEXT or --pairs" in err


class TestErrorHygiene:
    """Errors never leak tracebacks or leave observability armed."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["align", "--pairs", "/definitely/not/here.seq"],
            ["align", "A", "C", "--workers", "-1"],
            ["profile"],
        ],
    )
    def test_no_traceback_on_stderr(self, argv, capsys):
        code, _, err = run(argv, capsys)
        assert code == 2
        assert "Traceback" not in err

    def test_profile_failure_leaves_obs_disabled(self, capsys):
        from repro.obs import runtime as obs

        run(["profile", "--", "align"], capsys)
        assert not obs.enabled()
