"""Unit tests for the sanitizer's runtime guards and sessions.

Covers the :class:`GuardedMapping` ownership rules (owner writes audit,
cross-thread writes raise, frozen guards raise, fork-private copies pass
through), batch-boundary hook-leak detection, and the ``sanitize()``
session lifecycle (registry wrap/restore, nesting, exception paths).
"""

from __future__ import annotations

import threading

import pytest

from repro.align import backends
from repro.analysis.sanitizer import SanitizerError, sanitize
from repro.analysis.sanitizer.guards import AuditEvent, GuardedMapping
from repro.analysis.sanitizer import runtime as dsan
from repro.obs import runtime as obs


def _in_thread(fn):
    """Run ``fn`` in a worker thread, re-raising anything it raised."""
    box = []

    def target():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box.append(exc)

    thread = threading.Thread(target=target)
    thread.start()
    thread.join()
    if box:
        raise box[0]


# -- GuardedMapping ------------------------------------------------------


def test_owner_thread_mutations_allowed_and_audited():
    audit = []
    guard = GuardedMapping({"a": 1}, name="t", audit=audit)
    guard["b"] = 2
    guard.setdefault("c", 3)
    guard.pop("a")
    assert dict(guard.items()) == {"b": 2, "c": 3}
    assert [(e.op, e.key) for e in audit] == [
        ("__setitem__", "b"),
        ("setdefault", "c"),
        ("pop", "a"),
    ]
    assert all(isinstance(e, AuditEvent) for e in audit)


def test_reads_never_audit():
    audit = []
    guard = GuardedMapping({"a": 1}, name="t", audit=audit)
    assert guard["a"] == 1
    assert guard.get("missing", 9) == 9
    assert "a" in guard
    assert list(guard) == ["a"]
    assert len(guard) == 1
    assert bool(guard)
    assert list(guard.keys()) == ["a"]
    assert list(guard.values()) == [1]
    assert audit == []


def test_setdefault_on_present_key_is_a_read():
    audit = []
    guard = GuardedMapping({"a": 1}, name="t", audit=audit)
    assert guard.setdefault("a", 99) == 1
    assert audit == []


def test_frozen_guard_rejects_every_mutation():
    guard = GuardedMapping({"a": 1}, name="frozen-reg", frozen=True)
    with pytest.raises(SanitizerError, match="frozen"):
        guard["b"] = 2
    with pytest.raises(SanitizerError, match="REPRO009"):
        guard.pop("a")
    with pytest.raises(SanitizerError):
        guard.clear()
    assert guard.data == {"a": 1}


def test_cross_thread_mutation_raises():
    guard = GuardedMapping({}, name="cache")
    with pytest.raises(SanitizerError, match="cross-thread"):
        _in_thread(lambda: guard.__setitem__("k", 1))
    assert "k" not in guard


def test_cross_thread_read_is_fine():
    guard = GuardedMapping({"k": 1}, name="cache")
    _in_thread(lambda: guard["k"])


def test_foreign_pid_mutation_passes_through():
    """A forked worker touches its COW copy — invisible to the owner."""
    guard = GuardedMapping({}, name="cache")
    guard._pid = guard._pid + 1  # simulate "guard built in the parent"
    guard["k"] = 1  # must neither raise nor audit
    assert guard["k"] == 1


def test_wraps_without_copying():
    raw = {"a": 1}
    guard = GuardedMapping(raw, name="t")
    guard["b"] = 2
    assert raw == {"a": 1, "b": 2}
    assert guard.data is raw


# -- batch boundary tokens ----------------------------------------------


def test_batch_hooks_disabled_when_disarmed():
    assert not dsan.armed()
    token = dsan.batch_begin()
    assert token is None
    dsan.batch_end(token, "noop")  # must be a silent no-op


def test_batch_leak_detected_inside_session():
    with sanitize() as session:
        token = dsan.batch_begin()
        obs.enable()
        try:
            with pytest.raises(SanitizerError, match="REPRO007 dynamic"):
                dsan.batch_end(token, "test_batch")
        finally:
            obs.disable()
        # Only leak-free boundaries count as "checked".
        assert session.batches_checked == 0


def test_batch_balanced_arming_passes():
    """obs armed and disarmed inside the batch leaves no residue."""
    with sanitize() as session:
        token = dsan.batch_begin()
        obs.enable()
        obs.disable()
        dsan.batch_end(token, "test_batch")
        assert session.batches_checked >= 1


def test_batch_token_is_per_batch_not_per_session():
    """Hooks armed *around* a batch (obs.capture style) are legitimate."""
    with sanitize():
        obs.enable()
        try:
            token = dsan.batch_begin()
            dsan.batch_end(token, "wrapped_batch")  # must not raise
        finally:
            obs.disable()


# -- sanitize() session lifecycle ---------------------------------------


def test_sanitize_wraps_and_restores_registries():
    original_registry = backends._REGISTRY
    original_instances = backends._INSTANCES
    with sanitize():
        assert isinstance(backends._REGISTRY, GuardedMapping)
        assert isinstance(backends._INSTANCES, GuardedMapping)
        assert dsan.armed()
    assert backends._REGISTRY is original_registry
    assert backends._INSTANCES is original_instances
    assert not dsan.armed()


def test_sanitize_restores_on_exception():
    original_registry = backends._REGISTRY
    with pytest.raises(ValueError):
        with sanitize():
            raise ValueError("boom")
    assert backends._REGISTRY is original_registry
    assert not dsan.armed()


def test_register_backend_raises_under_session():
    with sanitize():
        with pytest.raises(SanitizerError, match="frozen"):
            backends.register_backend(
                "dsan-test-probe", lambda: None, description="probe"
            )
    assert "dsan-test-probe" not in backends._REGISTRY


def test_get_backend_works_under_session():
    """Pre-warmed instances serve lookups without tripping the guard."""
    with sanitize():
        engine = backends.get_backend("pure")
        assert engine.name == "pure"


def test_nested_sanitize_reuses_session():
    with sanitize() as outer:
        with sanitize() as inner:
            assert inner is outer
        # Inner exit must not tear down the outer session's guards.
        assert dsan.armed()
        assert isinstance(backends._REGISTRY, GuardedMapping)
    assert not dsan.armed()


def test_session_exit_leak_check():
    """An ambient hook still armed at clean session exit raises."""
    with pytest.raises(SanitizerError):
        with sanitize():
            obs.enable()
    obs.disable()
    assert not dsan.armed()
    assert not isinstance(backends._REGISTRY, GuardedMapping)


def test_session_exit_check_skipped_on_exception():
    """An in-flight exception must not be shadowed by the leak check."""
    with pytest.raises(KeyError, match="original"):
        with sanitize():
            obs.enable()
            raise KeyError("original")
    obs.disable()
    assert not dsan.armed()


def test_session_summary_shape():
    with sanitize() as session:
        token = dsan.batch_begin()
        dsan.batch_end(token, "summary_batch")
        summary = session.summary()
    assert summary["batches_checked"] >= 1
    assert "guards" in summary
    assert "audit" in summary
