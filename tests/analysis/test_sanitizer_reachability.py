"""Unit tests for the sanitizer's worker-reachability scan (REPRO006-009).

Every rule gets a true-positive fixture and a clean twin, written as tiny
synthetic trees scanned with the corpus configuration (a single
``worker.py`` whose ``_shard_worker`` is the root).  The real package is
scanned once at the end: it must be finding-free, with the known audited
sites suppressed by their inline pragmas.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.diagnostics import CODES, AnalysisError
from repro.analysis.sanitizer.reachability import (
    DEFAULT_ROOTS,
    ScanConfig,
    scan_package,
    scan_tree,
)
from repro.analysis.sanitizer.sancorpus import CORPUS_CONFIG


def _scan(tmp_path, source, config=CORPUS_CONFIG):
    (tmp_path / "worker.py").write_text(textwrap.dedent(source))
    return scan_tree(tmp_path, config=config)


def _codes(report):
    return sorted(d.code for d in report.findings)


# -- REPRO006: shared mutable module state ------------------------------


def test_repro006_subscript_write_flagged(tmp_path):
    report = _scan(
        tmp_path,
        """
        _CACHE = {}

        def _shard_worker(shard):
            _CACHE["k"] = shard
            return shard
        """,
    )
    assert _codes(report) == ["REPRO006"]
    (finding,) = report.findings
    assert "worker.py:5" in finding.where
    assert "_CACHE" in finding.message


def test_repro006_mutator_method_flagged(tmp_path):
    report = _scan(
        tmp_path,
        """
        _LOG = []

        def _shard_worker(shard):
            _LOG.append(len(shard))
            return shard
        """,
    )
    assert _codes(report) == ["REPRO006"]
    assert "append" in report.findings[0].message


def test_repro006_global_rebind_flagged(tmp_path):
    report = _scan(
        tmp_path,
        """
        TOTAL = 0

        def _shard_worker(shard):
            global TOTAL
            TOTAL += len(shard)
            return shard
        """,
    )
    assert _codes(report) == ["REPRO006"]


def test_repro006_transitive_callee_flagged(tmp_path):
    """The write sits two calls below the root; reachability must find it."""
    report = _scan(
        tmp_path,
        """
        _SEEN = []

        def _shard_worker(shard):
            return _outer(shard)

        def _outer(shard):
            return _inner(shard)

        def _inner(shard):
            _SEEN.append(shard)
            return shard
        """,
    )
    assert _codes(report) == ["REPRO006"]
    # The message carries a sample call chain from the root.
    assert "_shard_worker" in report.findings[0].message


def test_repro006_local_state_clean(tmp_path):
    report = _scan(
        tmp_path,
        """
        def _shard_worker(shard):
            cache = {}
            log = []
            for key, value in shard:
                cache[key] = value
                log.append(key)
            return cache, log
        """,
    )
    assert report.clean


def test_repro006_unreachable_write_not_flagged(tmp_path):
    """A mutation outside the worker-reachable set is out of scope."""
    report = _scan(
        tmp_path,
        """
        _CACHE = {}

        def _shard_worker(shard):
            return shard

        def driver_only(key, value):
            _CACHE[key] = value
        """,
    )
    assert report.clean
    assert "worker.py::driver_only" not in report.reachable


# -- REPRO007: ambient hooks without guaranteed reset -------------------


def test_repro007_inline_arm_flagged(tmp_path):
    report = _scan(
        tmp_path,
        """
        def _shard_worker(shard, isa):
            buffer = []
            isa.trace_sink = buffer
            out = [len(p) for p, _ in shard]
            isa.trace_sink = None
            return out, buffer
        """,
    )
    assert _codes(report) == ["REPRO007"]
    assert "trace_sink" in report.findings[0].message


def test_repro007_ambient_global_arm_flagged(tmp_path):
    report = _scan(
        tmp_path,
        """
        _FAULT_HOOK = None

        def _shard_worker(shard):
            _arm(object())
            return shard

        def _arm(hook):
            global _FAULT_HOOK
            _FAULT_HOOK = hook
        """,
    )
    assert _codes(report) == ["REPRO007"]


def test_repro007_contextmanager_clean(tmp_path):
    report = _scan(
        tmp_path,
        """
        import contextlib

        _FAULT_HOOK = None

        def _shard_worker(shard):
            with _fault_scope(object()):
                return [len(p) for p, _ in shard]

        @contextlib.contextmanager
        def _fault_scope(hook):
            global _FAULT_HOOK
            previous = _FAULT_HOOK
            _FAULT_HOOK = hook
            try:
                yield
            finally:
                _FAULT_HOOK = previous
        """,
    )
    assert report.clean


def test_repro007_contextmanager_without_finally_flagged(tmp_path):
    """The decorator alone earns no exemption — the try/finally does."""
    report = _scan(
        tmp_path,
        """
        import contextlib

        _FAULT_HOOK = None

        def _shard_worker(shard):
            with _fault_scope(object()):
                return [len(p) for p, _ in shard]

        @contextlib.contextmanager
        def _fault_scope(hook):
            global _FAULT_HOOK
            previous = _FAULT_HOOK
            _FAULT_HOOK = hook
            yield
            _FAULT_HOOK = previous
        """,
    )
    assert _codes(report) == ["REPRO007"]


def test_repro007_disarm_writes_clean(tmp_path):
    """Setting a hook to None / a saved previous value is a disarm."""
    report = _scan(
        tmp_path,
        """
        def _shard_worker(shard, isa):
            previous = isa.trace_sink
            isa.trace_sink = None
            out = [len(p) for p, _ in shard]
            isa.trace_sink = previous
            return out
        """,
    )
    assert report.clean


# -- REPRO008: wall clock / unseeded RNG --------------------------------


@pytest.mark.parametrize(
    "stmt",
    [
        "stamp = time.time()",
        "jitter = random.random()",
        "value = random.randrange(4)",
        "rng = random.Random()",
        "token = os.urandom(8)",
        "label = uuid.uuid4()",
        "now = datetime.datetime.now()",
    ],
)
def test_repro008_nondeterminism_flagged(tmp_path, stmt):
    report = _scan(
        tmp_path,
        f"""
        import datetime
        import os
        import random
        import time
        import uuid

        def _shard_worker(shard):
            {stmt}
            return shard
        """,
    )
    assert _codes(report) == ["REPRO008"]


@pytest.mark.parametrize(
    "stmt",
    [
        "start = time.perf_counter()",
        "tick = time.monotonic()",
        "rng = random.Random(7)",
        "time.sleep(0)",
    ],
)
def test_repro008_allowed_forms_clean(tmp_path, stmt):
    report = _scan(
        tmp_path,
        f"""
        import random
        import time

        def _shard_worker(shard):
            {stmt}
            return shard
        """,
    )
    assert report.clean


# -- REPRO009: process-global registry mutation -------------------------


def test_repro009_registry_write_flagged(tmp_path):
    report = _scan(
        tmp_path,
        """
        _REGISTRY = {}
        _INSTANCES = {}

        def _shard_worker(shard):
            _REGISTRY["late"] = object
            _INSTANCES.pop("stale", None)
            return shard
        """,
    )
    assert _codes(report) == ["REPRO009", "REPRO009"]


def test_repro009_registry_read_clean(tmp_path):
    report = _scan(
        tmp_path,
        """
        _REGISTRY = {"pure": object}

        def _shard_worker(shard):
            engine = _REGISTRY["pure"]
            return [engine for _ in shard]
        """,
    )
    assert report.clean


# -- pragmas ------------------------------------------------------------


def test_pragma_on_finding_line_suppresses(tmp_path):
    report = _scan(
        tmp_path,
        """
        _INSTANCES = {}

        def _shard_worker(shard):
            _INSTANCES["k"] = shard  # dsan: allow[REPRO009] audited fill
            return shard
        """,
    )
    assert report.clean
    assert [d.code for d in report.suppressed] == ["REPRO009"]


def test_pragma_on_def_line_suppresses(tmp_path):
    report = _scan(
        tmp_path,
        """
        _LOG = []

        def _shard_worker(shard):  # dsan: allow[REPRO006] audited log
            _LOG.append(shard)
            return shard
        """,
    )
    assert report.clean
    assert [d.code for d in report.suppressed] == ["REPRO006"]


def test_pragma_wrong_code_does_not_suppress(tmp_path):
    report = _scan(
        tmp_path,
        """
        _LOG = []

        def _shard_worker(shard):
            _LOG.append(shard)  # dsan: allow[REPRO009] wrong code
            return shard
        """,
    )
    assert _codes(report) == ["REPRO006"]


def test_pragma_on_preceding_line_does_not_suppress(tmp_path):
    """Block comments above the line are documentation, not suppression."""
    report = _scan(
        tmp_path,
        """
        _LOG = []

        def _shard_worker(shard):
            # dsan: allow[REPRO006] too far away
            _LOG.append(shard)
            return shard
        """,
    )
    assert _codes(report) == ["REPRO006"]


# -- roots & configuration ----------------------------------------------


def test_missing_root_raises(tmp_path):
    (tmp_path / "worker.py").write_text("def other():\n    return 1\n")
    config = ScanConfig(
        roots=("worker.py::_shard_worker",), kernel_base=None, where_prefix=""
    )
    with pytest.raises(AnalysisError, match="_shard_worker"):
        scan_tree(tmp_path, config=config)


def test_kernel_subclass_methods_become_roots(tmp_path):
    (tmp_path / "kernels.py").write_text(
        textwrap.dedent(
            """
            _SCRATCH = []

            class KernelBackend:
                def full_matrix(self, pattern, text):
                    raise NotImplementedError

            class FastBackend(KernelBackend):
                def full_matrix(self, pattern, text):
                    _SCRATCH.append(pattern)
                    return 0
            """
        )
    )
    config = ScanConfig(roots=(), kernel_base="KernelBackend", where_prefix="")
    report = scan_tree(tmp_path, config=config)
    assert any("FastBackend.full_matrix" in root for root in report.roots)
    assert _codes(report) == ["REPRO006"]


def test_new_rule_codes_registered():
    for code in ("REPRO006", "REPRO007", "REPRO008", "REPRO009"):
        assert code in CODES


# -- the real tree -------------------------------------------------------


def test_package_scan_is_clean():
    """The shipped package has zero findings; audited sites suppressed."""
    report = scan_package()
    assert report.clean, [d.to_dict() for d in report.findings]
    assert report.suppressed, "expected the audited pragma sites"
    suppressed = {d.code for d in report.suppressed}
    assert suppressed <= {"REPRO007", "REPRO009"}


def test_package_scan_reaches_both_engines():
    report = scan_package()
    for root in DEFAULT_ROOTS:
        assert any(root in resolved for resolved in report.roots)
    assert report.reachable, "worker-reachable set must not be empty"
    assert report.modules > 50
    assert report.functions > len(report.reachable)
