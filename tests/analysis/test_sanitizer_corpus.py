"""The sanitizer's violation corpus and its CLI gate.

Mirrors the verifier-corpus contract: every annotated case must produce
exactly its expected findings (``repro sanitize --corpus`` exits
non-zero by construction), and the shipped tree must sanitize clean
(exit 0).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.analysis.sanitizer import run_sanitize, sanitize, violation_corpus
from repro.analysis.sanitizer.runtime import SanitizerError
from repro.analysis.sanitizer.sancorpus import CORPUS_CONFIG
from repro.analysis.sanitizer.reachability import scan_tree
from repro.cli import main


def _write_case(case, root: Path) -> None:
    for relative, source in case.files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)


def test_corpus_covers_every_rule_both_ways():
    corpus = violation_corpus(seed=0)
    static = [c for c in corpus if c.kind == "static"]
    dynamic = [c for c in corpus if c.kind == "dynamic"]
    assert len(dynamic) == 3
    covered = {code for case in static for code, _ in case.expect}
    assert covered == {"REPRO006", "REPRO007", "REPRO008", "REPRO009"}
    # Every rule also has a clean twin (a static case expecting nothing).
    clean = [c for c in static if not c.expect]
    assert len(clean) >= 4


def test_every_static_case_matches_its_annotations():
    for case in violation_corpus(seed=0):
        if case.kind != "static":
            continue
        with tempfile.TemporaryDirectory(prefix="dsan-test-") as tmp:
            root = Path(tmp)
            _write_case(case, root)
            report = scan_tree(root, config=CORPUS_CONFIG)
            got = tuple(sorted((d.code, d.where) for d in report.findings))
            assert got == case.expect, (
                f"case {case.name}: expected {case.expect}, got {got}"
            )


def test_every_dynamic_case_raises_under_session():
    for case in violation_corpus(seed=0):
        if case.kind != "dynamic":
            continue
        raised = False
        with sanitize():
            try:
                case.trigger()
            except SanitizerError:
                raised = True
        assert raised, f"dynamic case {case.name} did not raise"


def test_corpus_is_seed_stable():
    """Structure (cases + expectation codes) is seed-independent."""
    for seed in (1, 7, 42):
        corpus = violation_corpus(seed=seed)
        assert [c.name for c in corpus] == [
            c.name for c in violation_corpus(seed=0)
        ]
        for case, base in zip(corpus, violation_corpus(seed=0)):
            assert [code for code, _ in case.expect] == [
                code for code, _ in base.expect
            ]


def test_run_sanitize_corpus_all_matched():
    report = run_sanitize(
        seed=3,
        static=False,
        dynamic=False,
        shadow=False,
        corpus=True,
    )
    assert report.corpus_matched == report.corpus_cases
    assert report.corpus_cases == len(violation_corpus(seed=3))


def test_cli_sanitize_clean_tree_exits_zero(capsys):
    assert (
        main(
            [
                "sanitize",
                "--skip-shadow",
                "--pairs", "4",
                "--workers", "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "sanitize: clean" in out


def test_cli_sanitize_corpus_exits_nonzero(capsys):
    """--corpus runs real violations, so the exit code must be 1."""
    assert (
        main(
            [
                "sanitize",
                "--corpus",
                "--skip-static",
                "--skip-dynamic",
                "--skip-shadow",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "violation corpus" in out
    corpus_size = len(violation_corpus(seed=0))
    assert f"{corpus_size}/{corpus_size} cases" in out


def test_cli_sanitize_json(capsys):
    assert (
        main(
            [
                "sanitize",
                "--format", "json",
                "--skip-shadow",
                "--pairs", "4",
                "--workers", "1",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert payload["scan"]["worker_reachable"] > 0
    assert payload["session"]["batches_checked"] >= 1
