"""SARIF 2.1.0 export: shape, locations, and the CLI surfaces."""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.sarif import SARIF_VERSION, render_sarif, to_sarif
from repro.cli import main


def _file_diag(code="REPRO006", line=12):
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message="worker writes shared state",
        hint="thread it through the reply",
        where=f"src/repro/align/parallel.py:{line}",
    )


def _stream_diag():
    return Diagnostic(
        code="GMX003",
        severity=Severity.WARNING,
        message="tile shape drifted",
        where="Full(GMX)[42]",
    )


def test_sarif_top_level_shape():
    log = to_sarif([_file_diag()])
    assert log["version"] == SARIF_VERSION
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert "SRCROOT" in run["originalUriBaseIds"]


def test_sarif_rules_deduplicate_and_index():
    log = to_sarif([_file_diag(line=1), _file_diag(line=2), _stream_diag()])
    (run,) = log["runs"]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == ["REPRO006", "GMX003"]
    results = run["results"]
    assert [r["ruleIndex"] for r in results] == [0, 0, 1]
    assert all("shortDescription" in r for r in rules)


def test_sarif_physical_location_for_file_findings():
    log = to_sarif([_file_diag(line=7)])
    (result,) = log["runs"][0]["results"]
    (location,) = result["locations"]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == (
        "src/repro/align/parallel.py"
    )
    assert physical["artifactLocation"]["uriBaseId"] == "SRCROOT"
    assert physical["region"]["startLine"] == 7


def test_sarif_logical_location_for_stream_findings():
    log = to_sarif([_stream_diag()])
    (result,) = log["runs"][0]["results"]
    (location,) = result["locations"]
    assert "physicalLocation" not in location
    (logical,) = location["logicalLocations"]
    assert logical["fullyQualifiedName"] == "Full(GMX)[42]"


def test_sarif_severity_mapping_and_hint_in_message():
    log = to_sarif([_file_diag(), _stream_diag()])
    first, second = log["runs"][0]["results"]
    assert first["level"] == "error"
    assert "(fix: " in first["message"]["text"]
    assert second["level"] == "warning"
    assert "(fix: " not in second["message"]["text"]


def test_render_sarif_round_trips():
    text = render_sarif([_file_diag()], tool_name="repro-sanitize")
    log = json.loads(text)
    assert log["runs"][0]["tool"]["driver"]["name"] == "repro-sanitize"


def test_cli_lint_sarif(capsys):
    assert main(["lint", "--format", "sarif", "--pairs", "2"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == SARIF_VERSION
    assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
    assert log["runs"][0]["results"] == []  # the tree lints clean


def test_cli_sanitize_sarif(capsys):
    code = main(
        [
            "sanitize",
            "--format", "sarif",
            "--skip-shadow",
            "--skip-dynamic",
        ]
    )
    assert code == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["tool"]["driver"]["name"] == "repro-sanitize"
    assert log["runs"][0]["results"] == []  # the tree sanitizes clean
