"""Unit tests for shadow execution (parallel-vs-serial digest diffing).

The digest helpers must canonicalise results stably; ``shadow_execute``
must pass on a deterministic aligner and catch a rigged stateful one,
shrinking the diverging shard to a minimal reproducer that names the
backend and worker count.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.align import FullGmxAligner
from repro.align.base import AlignmentResult, KernelStats
from repro.analysis.sanitizer.shadow import (
    ShadowMismatch,
    result_digest,
    results_digest,
    shadow_execute,
    shrink_shard,
)
from repro.workloads.generator import generate_pair


def _pairs(count, seed=3, length=48):
    rng = random.Random(seed)
    return [
        (pair.pattern, pair.text)
        for pair in (generate_pair(length, 0.1, rng) for _ in range(count))
    ]


def _result(score=3, cells=10):
    return AlignmentResult(
        score=score,
        alignment=None,
        stats=KernelStats(
            instructions=Counter({"gmx.tile": 2, "ctrl": 1}), dp_cells=cells
        ),
    )


class StatefulAligner:
    """Rigged aligner whose score leaks a per-instance call counter.

    The parallel pass advances the live instance's counter; the shadow
    pass re-executes on a pickled snapshot, so the counters (and scores)
    diverge — exactly the class of bug shadow execution exists to catch.
    Module-level so it pickles for the pool path.
    """

    name = "stateful"

    def __init__(self):
        self.calls = 0

    def align(self, pattern, text, *, traceback=True):
        self.calls += 1
        return AlignmentResult(
            score=abs(len(pattern) - len(text)) + self.calls,
            alignment=None,
            stats=KernelStats(),
        )


# -- digests -------------------------------------------------------------


def test_result_digest_is_deterministic():
    assert result_digest(_result()) == result_digest(_result())


def test_result_digest_covers_score_and_stats():
    base = result_digest(_result())
    assert result_digest(_result(score=4)) != base
    assert result_digest(_result(cells=11)) != base


def test_result_digest_ignores_instruction_insertion_order():
    first = _result()
    second = _result()
    second.stats.instructions = Counter()
    second.stats.instructions["ctrl"] = 1
    second.stats.instructions["gmx.tile"] = 2
    assert result_digest(first) == result_digest(second)


def test_results_digest_is_order_sensitive():
    a, b = _result(score=1), _result(score=2)
    assert results_digest([a, b]) != results_digest([b, a])


# -- shrink_shard --------------------------------------------------------


def test_shrink_shard_isolates_poison_pair():
    pairs = list(range(16))
    minimal = shrink_shard(pairs, lambda shard: 11 in shard)
    assert minimal == [11]


def test_shrink_shard_keeps_interacting_pairs():
    pairs = list(range(16))
    minimal = shrink_shard(pairs, lambda shard: {3, 12} <= set(shard))
    assert sorted(minimal) == [3, 12]


def test_shrink_shard_never_returns_passing_shard():
    pairs = list(range(8))
    still_fails = lambda shard: len(shard) >= 3  # noqa: E731
    minimal = shrink_shard(pairs, still_fails)
    assert still_fails(minimal)
    assert len(minimal) == 3


# -- shadow_execute ------------------------------------------------------


def test_shadow_clean_on_deterministic_aligner():
    report = shadow_execute(
        FullGmxAligner(tile_size=16),
        _pairs(10),
        workers=2,
        shard_size=3,
        sample=3,
        seed=5,
    )
    assert report.clean
    assert report.mismatches == []
    assert 0 < len(report.sampled) <= 3
    assert all(0 <= index < report.shards for index in report.sampled)
    assert report.batch_digest


def test_shadow_sampling_is_seeded():
    aligner = FullGmxAligner(tile_size=16)
    pairs = _pairs(12)
    kwargs = dict(workers=1, shard_size=2, sample=3, seed=9)
    first = shadow_execute(aligner, pairs, **kwargs)
    second = shadow_execute(aligner, pairs, **kwargs)
    assert first.sampled == second.sampled
    assert first.batch_digest == second.batch_digest


def test_shadow_catches_stateful_aligner():
    report = shadow_execute(
        StatefulAligner(),
        _pairs(8),
        workers=1,
        shard_size=2,
        sample=4,
        seed=2,
    )
    assert not report.clean
    assert report.mismatches
    mismatch = report.mismatches[0]
    assert isinstance(mismatch, ShadowMismatch)
    assert mismatch.parallel_digest != mismatch.shadow_digest
    # The shrunk reproducer stays small and the render names the context.
    assert 1 <= len(mismatch.minimal_pairs) <= 2
    rendered = mismatch.render()
    assert "worker" in rendered
    assert str(report.workers) in rendered


def test_shadow_report_to_dict():
    report = shadow_execute(
        FullGmxAligner(tile_size=16),
        _pairs(6),
        workers=1,
        shard_size=2,
        sample=2,
        seed=1,
    )
    payload = report.to_dict()
    assert payload["clean"] is True
    assert payload["shards"] == report.shards
    assert payload["sampled"] == list(report.sampled)
    assert payload["mismatches"] == []
