"""Tests for the repo invariant lint (repro.analysis.repolint)."""

import textwrap

from repro.analysis import (
    check_aligner_picklability,
    lint_repo,
    lint_test_determinism,
)
from repro.analysis.repolint import HOT_PATH_MODULES


def _write_tree(tmp_path, files):
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


class TestSyntheticViolations:
    def test_bare_except(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "mod.py": """
                try:
                    risky()
                except:
                    pass
                """
            },
        )
        diagnostics = lint_repo(root, pickle_check=False)
        assert [d.code for d in diagnostics] == ["REPRO001"]
        assert "mod.py:4" in diagnostics[0].where

    def test_exception_outside_error_hierarchy(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "errs.py": """
                class RootError(Exception):
                    pass

                class FineError(RootError):
                    pass

                class RogueError:
                    pass
                """
            },
        )
        diagnostics = lint_repo(root, pickle_check=False)
        assert [d.code for d in diagnostics] == ["REPRO002"]
        assert "RogueError" in diagnostics[0].message

    def test_float_in_hot_path_module(self, tmp_path):
        hot = HOT_PATH_MODULES[0]
        root = _write_tree(
            tmp_path,
            {
                hot: """
                SCALE = 1.5

                def halve(x):
                    return x / 2
                """,
                "eval/fine.py": """
                RATIO = 0.5  # floats are fine outside the kernels
                """,
            },
        )
        codes = [d.code for d in lint_repo(root, pickle_check=False)]
        assert codes == ["REPRO003", "REPRO003"]

    def test_float_call_in_hot_path(self, tmp_path):
        root = _write_tree(
            tmp_path, {HOT_PATH_MODULES[1]: "def f(x):\n    return float(x)\n"}
        )
        diagnostics = lint_repo(root, pickle_check=False)
        assert [d.code for d in diagnostics] == ["REPRO003"]
        assert "float() conversion" in diagnostics[0].message

    def test_clean_tree(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "ok.py": """
                class GoodError(ValueError):
                    pass

                def f():
                    try:
                        return 1 // 2
                    except ZeroDivisionError:
                        return 0
                """
            },
        )
        assert lint_repo(root, pickle_check=False) == []


class TestSeededRngLint:
    def test_unseeded_random_flagged(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "tests/test_flaky.py": """
                import random

                def test_something():
                    rng = random.Random()
                    assert rng.randint(0, 1) >= 0
                """
            },
        )
        diagnostics = lint_test_determinism(root)
        assert [d.code for d in diagnostics] == ["REPRO005"]
        assert "unseeded random.Random()" in diagnostics[0].message
        assert "tests/test_flaky.py:5" in diagnostics[0].where

    def test_global_rng_call_flagged(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "benchmarks/test_bench.py": """
                import random

                def test_bench():
                    random.seed(1)
                    return random.choice("ACGT")
                """
            },
        )
        codes = [d.code for d in lint_test_determinism(root)]
        assert codes == ["REPRO005", "REPRO005"]  # seed() and choice()

    def test_seeded_usage_is_clean(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "tests/test_fine.py": """
                import random

                def test_fine():
                    rng = random.Random(0xC0FFEE)
                    local = random.Random(7)
                    return rng.random() + local.random()
                """
            },
        )
        assert lint_test_determinism(root) == []

    def test_missing_suite_directories_are_skipped(self, tmp_path):
        assert lint_test_determinism(tmp_path) == []

    def test_suites_of_this_repo_are_deterministic(self):
        assert lint_test_determinism() == []


class TestRealRepo:
    def test_repo_is_clean(self):
        assert lint_repo() == []

    def test_hot_path_modules_exist(self):
        from repro.analysis.repolint import package_root

        for relative in HOT_PATH_MODULES:
            assert (package_root() / relative).is_file(), relative

    def test_all_aligners_picklable(self):
        assert check_aligner_picklability() == []
