"""Tests for the repo invariant lint (repro.analysis.repolint)."""

import textwrap

from repro.analysis import check_aligner_picklability, lint_repo
from repro.analysis.repolint import HOT_PATH_MODULES


def _write_tree(tmp_path, files):
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


class TestSyntheticViolations:
    def test_bare_except(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "mod.py": """
                try:
                    risky()
                except:
                    pass
                """
            },
        )
        diagnostics = lint_repo(root, pickle_check=False)
        assert [d.code for d in diagnostics] == ["REPRO001"]
        assert "mod.py:4" in diagnostics[0].where

    def test_exception_outside_error_hierarchy(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "errs.py": """
                class RootError(Exception):
                    pass

                class FineError(RootError):
                    pass

                class RogueError:
                    pass
                """
            },
        )
        diagnostics = lint_repo(root, pickle_check=False)
        assert [d.code for d in diagnostics] == ["REPRO002"]
        assert "RogueError" in diagnostics[0].message

    def test_float_in_hot_path_module(self, tmp_path):
        hot = HOT_PATH_MODULES[0]
        root = _write_tree(
            tmp_path,
            {
                hot: """
                SCALE = 1.5

                def halve(x):
                    return x / 2
                """,
                "eval/fine.py": """
                RATIO = 0.5  # floats are fine outside the kernels
                """,
            },
        )
        codes = [d.code for d in lint_repo(root, pickle_check=False)]
        assert codes == ["REPRO003", "REPRO003"]

    def test_float_call_in_hot_path(self, tmp_path):
        root = _write_tree(
            tmp_path, {HOT_PATH_MODULES[1]: "def f(x):\n    return float(x)\n"}
        )
        diagnostics = lint_repo(root, pickle_check=False)
        assert [d.code for d in diagnostics] == ["REPRO003"]
        assert "float() conversion" in diagnostics[0].message

    def test_clean_tree(self, tmp_path):
        root = _write_tree(
            tmp_path,
            {
                "ok.py": """
                class GoodError(ValueError):
                    pass

                def f():
                    try:
                        return 1 // 2
                    except ZeroDivisionError:
                        return 0
                """
            },
        )
        assert lint_repo(root, pickle_check=False) == []


class TestRealRepo:
    def test_repo_is_clean(self):
        assert lint_repo() == []

    def test_hot_path_modules_exist(self):
        from repro.analysis.repolint import package_root

        for relative in HOT_PATH_MODULES:
            assert (package_root() / relative).is_file(), relative

    def test_all_aligners_picklable(self):
        assert check_aligner_picklability() == []
