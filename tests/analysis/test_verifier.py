"""Tests for the GMX program verifier (repro.analysis.verifier)."""

import pytest

from repro.align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
from repro.analysis import (
    Program,
    Severity,
    malformed_corpus,
    summarize,
    verify_program,
    verify_trace,
    verify_words,
    worst_severity,
)
from repro.core.encoding import encode, encode_csr

CORPUS = malformed_corpus()


def _case(name):
    matches = [case for case in CORPUS if case.name == name]
    assert matches, f"no corpus case named {name}"
    return matches[0]


class TestMalformedCorpus:
    def test_covers_every_gmx_code(self):
        fired = {code for case in CORPUS for code, _ in case.expect}
        assert fired == {f"GMX00{k}" for k in range(1, 9)}

    def test_at_least_ten_cases(self):
        assert len(CORPUS) >= 10

    @pytest.mark.parametrize("case", CORPUS, ids=lambda case: case.name)
    def test_fires_exactly_the_annotated_diagnostics(self, case):
        diagnostics = verify_program(case.program, ports=case.ports)
        got = sorted((d.code, d.index) for d in diagnostics)
        assert got == sorted(case.expect)

    def test_deterministic_across_builds(self):
        again = malformed_corpus()
        assert [case.name for case in CORPUS] == [case.name for case in again]
        assert [case.program.instrs for case in CORPUS] == [
            case.program.instrs for case in again
        ]

    def test_every_diagnostic_has_hint_and_location(self):
        for case in CORPUS:
            for diagnostic in verify_program(case.program, ports=case.ports):
                assert diagnostic.hint
                assert diagnostic.where
                assert diagnostic.index is not None

    def test_high_garbage_delta_is_a_warning(self):
        diagnostics = verify_program(_case("high-garbage-delta").program)
        assert [d.severity for d in diagnostics] == [Severity.WARNING]

    def test_illegal_delta_field_is_an_error(self):
        diagnostics = verify_program(_case("bad-delta-encoding").program)
        assert [d.severity for d in diagnostics] == [Severity.ERROR]

    def test_truncated_program_warns_not_errors(self):
        diagnostics = verify_program(_case("truncated-program").program)
        assert worst_severity(diagnostics) is Severity.WARNING


class TestCleanStreams:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda sink: FullGmxAligner(tile_size=8, trace_sink=sink),
            lambda sink: FullGmxAligner(tile_size=8, fused=True, trace_sink=sink),
            lambda sink: BandedGmxAligner(tile_size=8, trace_sink=sink),
            lambda sink: WindowedGmxAligner(tile_size=8, trace_sink=sink),
        ],
        ids=["full", "full-fused", "banded", "windowed"],
    )
    def test_aligner_streams_verify_clean(self, factory):
        sink = []
        factory(sink).align("ACGTACGTACGTACGTAC", "ACGAACGTACTTACGTACG")
        assert sink
        for events in sink:
            assert verify_trace(events, tile_size=8) == []

    def test_distance_only_stream_is_clean(self):
        # No traceback: no gmx.tb, no csrr; the trailing state must not
        # be misread as dead writes (the bottom-row fold consumes it).
        sink = []
        aligner = FullGmxAligner(tile_size=4, trace_sink=sink)
        aligner.align("ACGTAC", "ACGAAC", traceback=False)
        assert verify_trace(sink[0], tile_size=4) == []

    def test_banded_abort_pass_is_clean(self):
        # Force at least one BandExceededError restart; the aborted pass's
        # stream is still captured and must verify clean.
        sink = []
        aligner = BandedGmxAligner(band=1, tile_size=4, trace_sink=sink)
        aligner.align("AAAAAAAATTTTTTTT", "TTTTTTTTAAAAAAAA")
        assert len(sink) > 1
        for events in sink:
            assert verify_trace(events, tile_size=4) == []

    def test_no_sink_records_nothing(self):
        aligner = FullGmxAligner(tile_size=4)
        result = aligner.align("ACGT", "ACGA")
        assert result.score == 1


class TestBinaryPrograms:
    def test_clean_binary_program(self):
        words = [
            encode_csr("csrrw", "gmx_pattern", 0, 1),
            encode_csr("csrrw", "gmx_text", 0, 2),
            encode("gmx.v", 5, 0, 0),
            encode("gmx.h", 6, 0, 0),
        ]
        assert verify_words(words, tile_size=4) == []

    def test_vh_defines_register_pair(self):
        words = [
            encode_csr("csrrw", "gmx_pattern", 0, 1),
            encode_csr("csrrw", "gmx_text", 0, 2),
            encode("gmx.vh", 4, 0, 0),
            encode("gmx.v", 8, 4, 5),  # both x4 and x5 now defined
        ]
        assert verify_words(words, tile_size=4) == []

    def test_single_port_flags_vh(self):
        words = [
            encode_csr("csrrw", "gmx_pattern", 0, 1),
            encode_csr("csrrw", "gmx_text", 0, 2),
            encode("gmx.vh", 4, 0, 0),
        ]
        codes = [d.code for d in verify_words(words, tile_size=4, ports=1)]
        assert codes == ["GMX007"]

    def test_full_traceback_binary_program(self):
        words = [
            encode_csr("csrrw", "gmx_pattern", 0, 1),
            encode_csr("csrrw", "gmx_text", 0, 2),
            encode("gmx.v", 5, 0, 0),
            encode("gmx.h", 6, 0, 0),
            encode_csr("csrrw", "gmx_pos", 0, 3),
            encode("gmx.tb", 0, 5, 6),
            encode_csr("csrrs", "gmx_lo", 7, 0),
            encode_csr("csrrs", "gmx_hi", 8, 0),
            encode_csr("csrrs", "gmx_pos", 9, 0),
        ]
        assert verify_words(words, tile_size=4) == []

    def test_summarize_counts(self):
        case = _case("binary-undecodable-word")
        counts = summarize(verify_program(case.program))
        assert counts["total"] == 2
        assert counts["by_code"]["GMX008"] == 1


class TestProgramOrderIsStable:
    def test_diagnostics_in_stream_order(self):
        case = _case("truncated-program")
        indices = [d.index for d in verify_program(case.program)]
        assert indices == sorted(indices)
