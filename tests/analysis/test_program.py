"""Tests for the stream IR, hex parsing, execute(), and the lint driver."""

import pytest

from repro.analysis import (
    LintReport,
    Program,
    aligner_stream_programs,
    run_lint,
)
from repro.core.bitvec import pack_deltas, unpack_deltas
from repro.core.isa import GmxIsa, IsaError
from repro.core.encoding import decode, encode, encode_csr


class TestFromWords:
    def test_gmx_and_csr_words_disassemble(self):
        words = [
            encode_csr("csrrw", "gmx_pattern", 0, 1),
            encode_csr("csrrs", "gmx_lo", 7, 0),
            encode("gmx.v", 5, 1, 2),
        ]
        program = Program.from_words(words, tile_size=4)
        assert not program.concrete
        assert [instr.op for instr in program.instrs] == ["csrw", "csrr", "gmx.v"]
        assert program.instrs[0].csr == "gmx_pattern"
        assert program.instrs[1].csr == "gmx_lo"
        assert program.instrs[2].rd == 5

    def test_csrrs_with_nonzero_rs1_is_a_write(self):
        word = encode_csr("csrrs", "gmx_pos", 0, 3)  # set-bits: a write
        program = Program.from_words([word], tile_size=4)
        assert program.instrs[0].op == "csrw"

    def test_undecodable_word_kept_in_stream(self):
        program = Program.from_words([0xFFFF_FFFF], tile_size=4)
        assert program.instrs[0].op == "unknown"
        assert program.instrs[0].word == 0xFFFF_FFFF
        assert program.instrs[0].note


class TestFromHex:
    def test_parses_comments_and_blanks(self):
        word = encode("gmx.v", 5, 0, 0)
        listing = f"# setup\n\n{word:08x}   # the tile op\n"
        program = Program.from_hex(listing, tile_size=4)
        assert len(program) == 1
        assert program.instrs[0].op == "gmx.v"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Program.from_hex("not-hex\n")


class TestExecute:
    """The functional model executes all four mnemonics, gmx.vh included."""

    def _setup(self, tile=4):
        isa = GmxIsa(tile_size=tile)
        isa.csrw("gmx_pattern", "ACGT")
        isa.csrw("gmx_text", "ACGA")
        return isa

    def test_vh_writes_register_pair(self):
        fill = pack_deltas([1, 1, 1, 1])
        isa = self._setup()
        registers = {1: fill, 2: fill}
        isa.execute(decode(encode("gmx.vh", 4, 1, 2)), registers)
        reference = self._setup()
        dv, dh = reference.gmx_vh(fill, fill)
        assert registers[4] == dv
        assert registers[5] == dh

    def test_vh_matches_v_h_pair(self):
        fill = pack_deltas([1, 1, 1, 1])
        isa = self._setup()
        registers = {1: fill, 2: fill}
        isa.execute(decode(encode("gmx.v", 6, 1, 2)), registers)
        isa.execute(decode(encode("gmx.h", 7, 1, 2)), registers)
        fused = self._setup()
        fused_regs = {1: fill, 2: fill}
        fused.execute(decode(encode("gmx.vh", 4, 1, 2)), fused_regs)
        assert (registers[6], registers[7]) == (fused_regs[4], fused_regs[5])

    def test_vh_requires_even_nonzero_rd(self):
        isa = self._setup()
        for rd in (3, 5):
            with pytest.raises(IsaError):
                isa.execute(decode(encode("gmx.vh", rd, 1, 2)), {1: 0, 2: 0})

    def test_x0_reads_as_zero(self):
        isa = self._setup()
        registers = {0: 0xDEAD}  # must be ignored: x0 is hard-wired
        isa.execute(decode(encode("gmx.v", 5, 0, 0)), registers)
        reference = self._setup()
        assert registers[5] == reference.gmx_v(0, 0)

    def test_x0_destination_discards(self):
        isa = self._setup()
        registers = {}
        isa.execute(decode(encode("gmx.v", 0, 0, 0)), registers)
        assert 0 not in registers


class TestTraceRecording:
    def test_trace_captures_retired_order(self):
        isa = GmxIsa(tile_size=4)
        isa.trace = []
        isa.csrw("gmx_pattern", "ACGT")
        isa.csrw("gmx_text", "ACGA")
        fill = pack_deltas([1] * 4)
        isa.gmx_v(fill, fill)
        assert [event.op for event in isa.trace] == ["csrw", "csrw", "gmx.v"]

    def test_faulting_instruction_not_retired(self):
        isa = GmxIsa(tile_size=4)
        isa.trace = []
        with pytest.raises(IsaError):
            isa.gmx_v(0, 0)  # CSRs uninitialised: traps, must not retire
        assert isa.trace == []

    def test_tile_outputs_recorded(self):
        isa = GmxIsa(tile_size=4)
        isa.trace = []
        isa.csrw("gmx_pattern", "ACGT")
        isa.csrw("gmx_text", "ACGT")
        fill = pack_deltas([1] * 4)
        dv = isa.gmx_v(fill, fill)
        assert isa.trace[-1].out == (dv,)
        assert all(delta in (-1, 0, 1) for delta in unpack_deltas(dv, 4))


class TestLintDriver:
    def test_clean_run(self):
        report = run_lint(pairs=1, tile_size=8)
        assert isinstance(report, LintReport)
        assert report.clean
        assert report.programs_checked == report.programs_clean > 0
        assert "clean" in report.render()

    def test_corpus_run_is_dirty_by_construction(self):
        report = run_lint(corpus=True, streams=False, repo=False)
        assert not report.clean
        assert report.corpus_matched == report.corpus_cases >= 10

    def test_to_dict_is_json_ready(self):
        import json

        report = run_lint(pairs=1, tile_size=8, repo=False)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["clean"] is True
        assert payload["summary"]["total"] == 0

    def test_stream_programs_labelled(self):
        labels = [
            label for label, _ in aligner_stream_programs(pairs=1, tile_size=8)
        ]
        assert any("Banded" in label for label in labels)
        assert any("fused" in label for label in labels)
        assert any("Windowed" in label for label in labels)

    def test_single_port_flags_fused_streams(self):
        report = run_lint(pairs=1, tile_size=8, repo=False, ports=1)
        assert not report.clean
        assert {d.code for d in report.diagnostics} == {"GMX007"}
