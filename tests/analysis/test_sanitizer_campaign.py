"""Chaos under the sanitizer: the acceptance gate of ISSUE 7.

A 100-fault campaign runs inside an armed ``sanitize()`` session: every
``align_batch*`` boundary is leak-checked, the backend registries are
guarded, and the output must stay byte-identical.  The full campaign
carries the ``chaos`` marker like the resilience suite's, and a quick
variant runs in every tier.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import run_sanitize, sanitize
from repro.resilience import run_campaign


class TestQuickGuardedCampaign:
    def test_small_campaign_under_guards(self):
        with sanitize() as session:
            report = run_campaign(
                seed=7, faults=6, pairs=8, length=48,
                workers=1, shard_size=3, shard_timeout=2.0,
            )
        assert report.ok
        assert report.identical
        assert session.batches_checked >= 1

    def test_guarded_campaign_matches_unguarded(self):
        """Arming the sanitizer must not perturb the campaign ledger."""
        plain = run_campaign(
            seed=13, faults=4, pairs=6, length=32,
            workers=1, shard_size=3, shard_timeout=2.0,
        )
        with sanitize():
            guarded = run_campaign(
                seed=13, faults=4, pairs=6, length=32,
                workers=1, shard_size=3, shard_timeout=2.0,
            )
        assert plain.ledger == guarded.ledger
        assert plain.counters == guarded.counters


@pytest.mark.chaos
class TestFullGuardedCampaign:
    def test_100_fault_campaign_under_guards(self):
        """The ISSUE acceptance run: 100 faults, workers, guards armed."""
        with sanitize() as session:
            report = run_campaign(
                seed=11, faults=100, workers=2, shard_timeout=5.0
            )
        assert report.ok, report.render()
        assert report.identical, report.render()
        assert report.counters.faults_injected == 100
        assert report.unaccounted == []
        assert session.batches_checked >= 2

    def test_full_sanitize_driver_is_clean(self):
        """The complete driver pass (static + dynamic + shadow)."""
        report = run_sanitize(seed=5, pairs=12, workers=2, sample=3)
        assert report.clean, report.render()
        assert report.scan is not None and report.scan.clean
        assert report.shadow is not None and report.shadow.clean
        assert report.session is not None
        assert report.session["batches_checked"] >= 1
