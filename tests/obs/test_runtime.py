"""Tests for the ambient observability switch (repro.obs.runtime)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

import pytest

from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NOOP_SPAN, SpanRecorder


@pytest.fixture(autouse=True)
def obs_disabled_around_each_test():
    """Every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.recorder() is None
        assert obs.metrics() is None

    def test_disabled_span_is_the_shared_noop(self):
        assert obs.span("anything", k=1) is NOOP_SPAN

    def test_disabled_metric_calls_are_noops(self):
        obs.inc("c")
        obs.observe("g", 1.0)
        obs.observe_ns("h", 10)  # must not raise with no registry armed

    def test_enable_returns_live_pair(self):
        recorder, registry = obs.enable()
        assert obs.enabled()
        assert obs.recorder() is recorder
        assert obs.metrics() is registry
        with obs.span("work"):
            obs.inc("c", 2)
        assert len(recorder) == 1
        assert registry.counter("c") == 2

    def test_enable_accepts_existing_state(self):
        recorder = SpanRecorder()
        registry = MetricsRegistry()
        registry.inc("carried", 5)
        got_recorder, got_registry = obs.enable(recorder, registry)
        assert got_recorder is recorder
        assert got_registry is registry
        assert obs.metrics().counter("carried") == 5

    def test_capture_restores_previous_state(self):
        outer_recorder, _ = obs.enable()
        with obs.span("outer"):
            pass
        with obs.capture() as (inner_recorder, inner_registry):
            assert obs.recorder() is inner_recorder
            with obs.span("inner"):
                obs.inc("inner-only")
        assert obs.recorder() is outer_recorder
        assert [s.name for s in outer_recorder.spans] == ["outer"]
        assert [s.name for s in inner_recorder.spans] == ["inner"]
        assert inner_registry.counter("inner-only") == 1

    def test_capture_restores_disabled_state(self):
        with obs.capture():
            assert obs.enabled()
        assert not obs.enabled()

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert not obs.enabled()


class TestOwnsRecorder:
    def test_false_while_disabled(self):
        assert not obs.owns_recorder()

    def test_true_for_the_creating_process(self):
        obs.enable()
        assert obs.owns_recorder()

    def test_false_for_an_inherited_recorder(self):
        recorder, _ = obs.enable()
        # Simulate the fork-started worker: ENABLED and a recorder exist,
        # but the recorder was created by a different process.
        recorder._pid = os.getpid() + 1
        assert obs.enabled()
        assert not obs.owns_recorder()


@dataclass
class FakeStats:
    tiles: int = 3


@dataclass
class FakeResult:
    stats: FakeStats = field(default_factory=FakeStats)
    alignment: Optional[object] = "an-alignment"


class FakeAligner:
    """Minimal stand-in exposing the Aligner.align shape."""

    calls: List[tuple] = []

    @obs.instrument_align("fake")
    def align(self, pattern, text, *, traceback=True):
        self.calls.append((pattern, text, traceback))
        return FakeResult(
            alignment="an-alignment" if traceback else None
        )


class TestInstrumentAlign:
    def test_disabled_path_is_a_tail_call(self):
        FakeAligner.calls = []
        result = FakeAligner().align("AC", "AG", traceback=False)
        assert FakeAligner.calls == [("AC", "AG", False)]
        assert result.alignment is None

    def test_enabled_path_records_everything(self):
        FakeAligner.calls = []
        recorder, registry = obs.enable()
        FakeAligner().align("ACGT", "ACG")
        FakeAligner().align("AA", "AA", traceback=False)
        spans = recorder.spans
        assert [s.name for s in spans] == ["align.fake", "align.fake"]
        assert spans[0].tags == {"m": 4, "n": 3, "traceback": True}
        assert registry.counter("align.fake.pairs") == 2
        assert registry.counter("align.fake.tiles") == 6
        assert registry.counter("align.fake.tracebacks") == 1  # one traceback
        hist = registry.snapshot().histograms["kernel.fake.align_ns"]
        assert hist.count == 2
