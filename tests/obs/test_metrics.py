"""Tests for the metrics registry and its snapshot algebra."""

from __future__ import annotations

import random

import pytest

from repro.obs.metrics import (
    HISTOGRAM_BOUNDS_NS,
    HistogramSnapshot,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
    snapshot_from_dict,
)


def make_registry(observations):
    registry = MetricsRegistry()
    for value in observations:
        registry.observe_ns("h", value)
    return registry


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("pairs")
        registry.inc("pairs", 4)
        assert registry.counter("pairs") == 5
        assert registry.counter("never-touched") == 0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("band", 8)
        registry.set_gauge("band", 16)
        assert registry.snapshot().gauges == {"band": 16}

    def test_histogram_aggregates(self):
        registry = make_registry([1_000, 5_000, 2_000_000])
        hist = registry.snapshot().histograms["h"]
        assert hist.count == 3
        assert hist.sum_ns == 2_006_000
        assert hist.min_ns == 1_000
        assert hist.max_ns == 2_000_000
        assert sum(hist.buckets) == 3

    def test_histogram_bucket_placement(self):
        registry = make_registry([1, HISTOGRAM_BOUNDS_NS[-1] + 1])
        buckets = registry.snapshot().histograms["h"].buckets
        assert buckets[0] == 1  # at-or-under the first bound
        assert buckets[-1] == 1  # overflow bucket

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", " padded "):
            with pytest.raises(MetricsError):
                registry.inc(bad)
            with pytest.raises(MetricsError):
                registry.observe_ns(bad, 1)

    def test_clear(self):
        registry = make_registry([10])
        registry.inc("c")
        registry.clear()
        snapshot = registry.snapshot()
        assert snapshot.counters == snapshot.gauges == {}
        assert snapshot.histograms == {}


class TestSnapshotAlgebra:
    def test_to_dict_keys_are_sorted(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.inc(name)
        assert list(registry.snapshot().to_dict()["counters"]) == [
            "alpha", "mid", "zeta",
        ]

    def test_diff_isolates_a_window(self):
        registry = MetricsRegistry()
        registry.inc("pairs", 3)
        registry.observe_ns("h", 100)
        before = registry.snapshot()
        registry.inc("pairs", 2)
        registry.inc("fresh")
        registry.observe_ns("h", 200)
        delta = registry.snapshot().diff(before)
        assert delta.counters == {"pairs": 2, "fresh": 1}
        assert delta.histograms["h"].count == 1
        assert delta.histograms["h"].sum_ns == 200

    def test_diff_drops_unchanged_names(self):
        registry = MetricsRegistry()
        registry.inc("static", 7)
        before = registry.snapshot()
        assert registry.snapshot().diff(before).counters == {}

    def test_merge_is_commutative_and_associative(self):
        parts = []
        rng = random.Random(0xFACE)
        for _ in range(3):
            registry = MetricsRegistry()
            for _ in range(10):
                registry.inc("pairs", rng.randint(1, 5))
                registry.observe_ns("h", rng.randint(1, 10**7))
            parts.append(registry.snapshot())
        a, b, c = parts
        forward = merge_snapshots([a, b, c]).to_dict()
        backward = merge_snapshots([c, b, a]).to_dict()
        grouped = merge_snapshots([merge_snapshots([a, b]), c]).to_dict()
        assert forward == backward == grouped

    def test_absorb_matches_merge(self):
        worker = MetricsRegistry()
        worker.inc("pairs", 4)
        worker.observe_ns("h", 123)
        parent = MetricsRegistry()
        parent.inc("pairs", 1)
        parent.observe_ns("h", 456)
        expected = merge_snapshots(
            [parent.snapshot(), worker.snapshot()]
        ).to_dict()
        parent.absorb(worker.snapshot())
        assert parent.snapshot().to_dict() == expected

    def test_snapshot_from_dict_roundtrip(self):
        registry = make_registry([100, 200])
        registry.inc("pairs", 9)
        registry.set_gauge("band", 8.0)
        snapshot = registry.snapshot()
        rebuilt = snapshot_from_dict(snapshot.to_dict())
        assert rebuilt.to_dict() == snapshot.to_dict()

    def test_histogram_merge_identity(self):
        empty = HistogramSnapshot()
        full = make_registry([5_000]).snapshot().histograms["h"]
        assert empty.merge(full) == full
        assert full.merge(empty) == full

    def test_empty_merge(self):
        merged = merge_snapshots([])
        assert merged == MetricsSnapshot()
