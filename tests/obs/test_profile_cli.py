"""Happy-path tests for the `repro profile` command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import runtime as obs


@pytest.fixture(autouse=True)
def obs_disabled_around_each_test():
    obs.disable()
    yield
    obs.disable()


def test_profile_align_prints_table_and_writes_artifacts(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    prof = tmp_path / "profile.json"
    jsonl = tmp_path / "spans.jsonl"
    code = main(
        [
            "profile",
            "--trace", str(trace),
            "--json", str(prof),
            "--jsonl", str(jsonl),
            "--",
            "align", "ACGTACGTAC", "ACGTTCGTAC",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "score=" in captured.out  # the inner command's own output
    assert "profile: align" in captured.out
    assert "align.full_gmx" in captured.out
    assert not obs.enabled()  # profiling disarms on exit

    doc = json.loads(trace.read_text())
    names = {event["name"] for event in doc["traceEvents"]}
    assert "cli.align" in names
    assert "align.full_gmx" in names
    assert all(event["ph"] == "X" for event in doc["traceEvents"])

    payload = json.loads(prof.read_text())
    assert payload["coverage"] >= 0.95  # the root span brackets the run
    assert any(row["name"] == "cli.align" for row in payload["rows"])

    lines = jsonl.read_text().strip().splitlines()
    assert {json.loads(line)["name"] for line in lines} == names


def test_profile_exit_code_follows_inner_command(tmp_path, capsys):
    empty = tmp_path / "empty.seq"
    empty.write_text("")
    code = main(["profile", "--", "align", "--pairs", str(empty)])
    capsys.readouterr()
    assert code == 2
    assert not obs.enabled()


def test_profile_diff_of_two_real_runs(tmp_path, capsys):
    for name in ("before", "after"):
        assert (
            main(
                [
                    "profile",
                    "--json", str(tmp_path / f"{name}.json"),
                    "--",
                    "align", "ACGTACGT", "ACGAACGT",
                ]
            )
            == 0
        )
    capsys.readouterr()
    code = main(
        [
            "profile",
            "--diff",
            str(tmp_path / "before.json"),
            str(tmp_path / "after.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "profile diff:" in out
    assert "align.full_gmx" in out


def test_profile_top_limits_rows(capsys):
    code = main(["profile", "--top", "1", "--", "align", "ACGT", "ACGA"])
    out = capsys.readouterr().out
    assert code == 0
    assert "more spans (see --json)" in out
