"""Tests for the sampling-free profiler (repro.obs.profiler)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    Profile,
    ProfileError,
    ProfileRow,
    build_profile,
    diff_profiles,
    load_profile,
    render_profile,
    render_profile_diff,
)
from repro.obs.tracing import Span, SpanRecorder


def span(span_id, parent_id, name, duration_ns, start_ns=0):
    return Span(
        span_id=span_id, parent_id=parent_id, name=name,
        start_ns=start_ns, duration_ns=duration_ns,
    )


class TestBuildProfile:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            span(0, None, "outer", 100),
            span(1, 0, "inner", 60),
            span(2, 1, "leaf", 10),
        ]
        profile = build_profile(spans, wall_ns=120)
        assert profile.row("outer").self_ns == 40  # only the direct child
        assert profile.row("inner").self_ns == 50
        assert profile.row("leaf").self_ns == 10

    def test_coverage_counts_top_level_only(self):
        spans = [
            span(0, None, "a", 50),
            span(1, 0, "a.child", 50),  # nested: no extra coverage
            span(2, None, "b", 30),
        ]
        profile = build_profile(spans, wall_ns=100)
        assert profile.covered_ns == 80
        assert profile.coverage == pytest.approx(0.8)

    def test_coverage_clamped_to_wall(self):
        profile = build_profile([span(0, None, "a", 500)], wall_ns=100)
        assert profile.coverage == 1.0

    def test_rows_aggregate_by_name(self):
        spans = [
            span(0, None, "k", 10),
            span(1, None, "k", 30),
            span(2, None, "k", 20),
        ]
        (row,) = build_profile(spans, wall_ns=60).rows
        assert (row.count, row.total_ns) == (3, 60)
        assert (row.min_ns, row.max_ns) == (10, 30)
        assert row.mean_ns == pytest.approx(20.0)

    def test_rows_sorted_by_self_time(self):
        spans = [span(0, None, "cold", 5), span(1, None, "hot", 500)]
        profile = build_profile(spans, wall_ns=505)
        assert [row.name for row in profile.rows] == ["hot", "cold"]

    def test_accepts_a_recorder(self):
        recorder = SpanRecorder(clock=iter(range(0, 10**9, 1000)).__next__)
        with recorder.span("r"):
            pass
        profile = build_profile(recorder, wall_ns=10_000)
        assert profile.row("r").count == 1

    def test_empty_profile(self):
        profile = build_profile([], wall_ns=0)
        assert profile.rows == []
        assert profile.coverage == 0.0


class TestSerialisation:
    def test_json_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("pairs", 3)
        profile = build_profile(
            [span(0, None, "k", 100)],
            wall_ns=120,
            label="demo",
            metrics=registry.snapshot(),
        )
        path = tmp_path / "p.json"
        path.write_text(profile.to_json())
        loaded = load_profile(path)
        assert loaded.label == "demo"
        assert loaded.wall_ns == 120
        assert loaded.row("k").total_ns == 100
        assert loaded.metrics.counters == {"pairs": 3}

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ProfileError, match="ghost.json"):
            load_profile(tmp_path / "ghost.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ProfileError, match="not a profile JSON"):
            load_profile(path)

    def test_load_wrong_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ProfileError, match="no 'rows' key"):
            load_profile(path)

    def test_load_malformed_row(self, tmp_path):
        path = tmp_path / "row.json"
        path.write_text(json.dumps({"rows": [{"name": "x"}]}))
        with pytest.raises(ProfileError, match="malformed profile row"):
            load_profile(path)


class TestRendering:
    def test_table_lists_rows_and_coverage(self):
        profile = build_profile(
            [span(0, None, "hot", 2_000_000)], wall_ns=2_100_000, label="demo"
        )
        text = render_profile(profile)
        assert "profile: demo" in text
        assert "span coverage: 95.2%" in text
        assert "hot" in text

    def test_table_truncates_to_top(self):
        spans = [span(i, None, f"s{i:02}", 10 + i) for i in range(30)]
        text = render_profile(build_profile(spans, wall_ns=10**6), top=5)
        assert "... 25 more spans (see --json)" in text


class TestDiff:
    def test_diff_orders_by_absolute_delta(self):
        before = Profile(rows=[
            ProfileRow(name="a", count=1, total_ns=100, self_ns=100),
            ProfileRow(name="b", count=1, total_ns=500, self_ns=500),
        ])
        after = Profile(rows=[
            ProfileRow(name="a", count=1, total_ns=110, self_ns=110),
            ProfileRow(name="b", count=1, total_ns=100, self_ns=100),
            ProfileRow(name="c", count=2, total_ns=50, self_ns=50),
        ])
        deltas = diff_profiles(before, after)
        assert [d.name for d in deltas] == ["b", "c", "a"]
        by_name = {d.name: d for d in deltas}
        assert by_name["b"].delta_ns == -400
        assert by_name["c"].ratio == float("inf")  # new row
        assert by_name["a"].ratio == pytest.approx(1.1)
        assert (by_name["c"].before_count, by_name["c"].after_count) == (0, 2)

    def test_render_diff_marks_new_rows(self):
        before = Profile(label="old", wall_ns=10**6)
        after = Profile(
            label="new",
            wall_ns=10**6,
            rows=[ProfileRow(name="fresh", count=1, total_ns=10, self_ns=10)],
        )
        text = render_profile_diff(before, after)
        assert "old -> new" in text
        assert "new" in text.splitlines()[-1]  # the ratio column
