"""End-to-end checks of the instrumented hot paths.

These tests run real aligners and batch engines under an armed recorder
and assert the span/metric streams the rest of the tooling (profiler,
artifact stamp, Perfetto export) is built on: per-kernel spans with
phases nested inside them, counters matching the work actually done, and
worker-process buffers merged back into one coherent trace.
"""

from __future__ import annotations

import pytest

from repro.align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
from repro.align.batch import align_batch
from repro.obs import runtime as obs
from repro.workloads.generator import generate_pair_set


@pytest.fixture(autouse=True)
def obs_disabled_around_each_test():
    obs.disable()
    yield
    obs.disable()


def pairs_for(count, length=60, seed=3):
    pair_set = generate_pair_set("obs-test", length, 0.1, count, seed=seed)
    return [(p.pattern, p.text) for p in pair_set.pairs]


class TestKernelSpans:
    def test_full_gmx_nests_phases_under_align(self):
        recorder, registry = obs.enable()
        FullGmxAligner(tile_size=8).align("ACGTACGTAC", "ACGTTCGTAC")
        spans = {s.name: s for s in recorder.spans}
        align_span = spans["align.full_gmx"]
        assert spans["phase.compute"].parent_id == align_span.span_id
        assert spans["phase.traceback"].parent_id == align_span.span_id
        assert align_span.tags["m"] == 10
        assert registry.counter("align.full_gmx.pairs") == 1
        assert registry.counter("align.full_gmx.tiles") > 0

    def test_banded_records_band_passes(self):
        recorder, registry = obs.enable()
        pattern, text = pairs_for(1, length=120)[0]
        BandedGmxAligner(tile_size=8).align(pattern, text)
        names = [s.name for s in recorder.spans]
        assert "align.banded_gmx" in names
        assert "phase.band_pass" in names
        assert registry.counter("align.banded_gmx.pairs") == 1

    def test_windowed_counts_windows(self):
        recorder, registry = obs.enable()
        pattern, text = pairs_for(1, length=200)[0]
        WindowedGmxAligner(tile_size=8).align(pattern, text)
        names = [s.name for s in recorder.spans]
        assert "align.windowed" in names
        assert "phase.window" in names
        assert registry.counter("align.windowed.windows") >= 1

    def test_no_spans_while_disabled(self):
        FullGmxAligner(tile_size=8).align("ACGT", "ACGA")
        assert not obs.enabled()


class TestBatchSpans:
    def test_serial_batch(self):
        recorder, registry = obs.enable()
        batch = align_batch(FullGmxAligner(tile_size=8), pairs_for(3))
        assert batch.pairs == 3
        spans = {s.name: s for s in recorder.spans}
        batch_span = spans["batch.align"]
        assert batch_span.tags["workers"] == 1
        assert registry.counter("batch.runs") == 1
        assert registry.counter("batch.pairs") == 3
        assert registry.counter("align.full_gmx.pairs") == 3

    def test_sharded_inline_batch(self):
        recorder, registry = obs.enable()
        align_batch(
            FullGmxAligner(tile_size=8),
            pairs_for(6),
            workers=1,
            shard_size=2,
        )
        assert registry.counter("batch.shards") == 3
        shard_spans = [
            s for s in recorder.spans if s.name == "shard.align"
        ]
        assert len(shard_spans) == 3
        assert all(s.tags["pairs"] == 2 for s in shard_spans)

    @pytest.mark.slow
    def test_pool_batch_merges_worker_traces(self):
        recorder, registry = obs.enable()
        batch = align_batch(
            FullGmxAligner(tile_size=8),
            pairs_for(8),
            workers=2,
            shard_size=2,
        )
        assert batch.pairs == 8
        # Worker metrics merged back into the parent registry.
        assert registry.counter("align.full_gmx.pairs") == 8
        assert registry.counter("batch.shards") == 4
        spans = recorder.spans
        ids = {s.span_id for s in spans}
        assert len(ids) == len(spans)  # absorb never collides ids
        for span in spans:  # every parent link resolves post-merge
            assert span.parent_id is None or span.parent_id in ids
        kernel_spans = [s for s in spans if s.name == "align.full_gmx"]
        assert len(kernel_spans) == 8

    def test_resilient_inline_batch(self):
        from repro.resilience import align_batch_resilient

        recorder, registry = obs.enable()
        batch = align_batch_resilient(
            FullGmxAligner(tile_size=8),
            pairs_for(4),
            workers=1,
            shard_size=2,
        )
        assert batch.pairs == 4
        names = [s.name for s in recorder.spans]
        assert "batch.align_resilient" in names
        assert names.count("shard.attempt") == 2
        assert registry.counter("batch.resilient_runs") == 1
        assert registry.counter("align.full_gmx.pairs") == 4


class TestDeterminism:
    def test_span_structure_is_seed_deterministic(self):
        def run():
            recorder, registry = obs.enable()
            align_batch(
                FullGmxAligner(tile_size=8),
                pairs_for(3, seed=9),
                shard_size=2,
            )
            structure = [
                (s.name, tuple(sorted(s.tags.items())), s.parent_id)
                for s in recorder.spans
            ]
            counters = registry.snapshot().to_dict()["counters"]
            obs.disable()
            return structure, counters

        assert run() == run()
