"""Tests for the span recorder (repro.obs.tracing)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracing import NOOP_SPAN, Span, SpanRecorder, TracingError


class FakeClock:
    """Deterministic nanosecond clock advancing a fixed step per read."""

    def __init__(self, step_ns: int = 1000):
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


class TestSpanRecording:
    def test_single_span(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("work", size=3):
            pass
        (span,) = recorder.spans
        assert span.name == "work"
        assert span.tags == {"size": 3}
        assert span.parent_id is None
        assert span.duration_ns == 1000

    def test_nesting_links_parents(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.spans  # completion order
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_exception_tags_error_and_propagates(self):
        recorder = SpanRecorder(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        (span,) = recorder.spans
        assert span.tags["error"] is True

    def test_tag_method_chains(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("work") as live:
            live.tag(rows=4).tag(cols=8)
        (span,) = recorder.spans
        assert span.tags == {"rows": 4, "cols": 8}

    def test_out_of_order_close_raises(self):
        recorder = SpanRecorder(clock=FakeClock())
        outer = recorder.span("outer")
        inner = recorder.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(TracingError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_threads_nest_independently(self):
        recorder = SpanRecorder()
        done = threading.Barrier(2)

        def worker(name):
            with recorder.span(f"outer.{name}"):
                done.wait()  # both outers open concurrently
                with recorder.span(f"inner.{name}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = {s.name: s for s in recorder.spans}
        assert len(spans) == 4
        for i in range(2):
            inner, outer = spans[f"inner.{i}"], spans[f"outer.{i}"]
            assert inner.parent_id == outer.span_id
            assert inner.tid == outer.tid


class TestDrainAbsorb:
    def test_roundtrip_preserves_structure(self):
        worker = SpanRecorder(clock=FakeClock())
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        buffer = worker.drain()
        assert len(worker) == 0
        assert all(isinstance(entry, dict) for entry in buffer)

        parent = SpanRecorder(clock=FakeClock())
        with parent.span("own"):
            pass
        assert parent.absorb(buffer) == 2
        spans = {s.name: s for s in parent.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert len({s.span_id for s in parent.spans}) == 3  # ids stay unique

    def test_absorb_remaps_colliding_ids(self):
        a, b = SpanRecorder(clock=FakeClock()), SpanRecorder(clock=FakeClock())
        for recorder in (a, b):
            with recorder.span("same-id-zero"):
                pass
        a.absorb(b.drain())
        ids = [s.span_id for s in a.spans]
        assert len(ids) == len(set(ids)) == 2

    def test_absorb_rejects_garbage(self):
        recorder = SpanRecorder()
        with pytest.raises(TracingError, match="malformed span payload"):
            recorder.absorb([{"name": "half-a-span"}])

    def test_absorb_empty_buffer(self):
        assert SpanRecorder().absorb([]) == 0

    def test_span_dict_roundtrip(self):
        span = Span(
            span_id=3, parent_id=1, name="x", start_ns=10, duration_ns=5,
            tags={"k": 1}, pid=42, tid=7,
        )
        assert Span.from_dict(span.to_dict()) == span


class TestChromeExport:
    def test_chrome_trace_shape(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("outer"):
            with recorder.span("inner", depth=1):
                pass
        doc = recorder.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]  # start order
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0  # rebased to the earliest span
            assert event["dur"] > 0.0
            assert {"pid", "tid", "cat", "args"} <= set(event)
        assert events[1]["args"]["parent_id"] == events[0]["args"]["span_id"]

    def test_to_json_parses(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("x"):
            pass
        parsed = json.loads(recorder.to_json())
        assert parsed["otherData"]["spans"] == 1

    def test_to_jsonl_one_line_per_span(self):
        recorder = SpanRecorder(clock=FakeClock())
        for name in ("a", "b", "c"):
            with recorder.span(name):
                pass
        lines = recorder.to_jsonl().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b", "c"]

    def test_determinism_under_fake_clock(self):
        def run():
            recorder = SpanRecorder(clock=FakeClock())
            with recorder.span("outer", k=1):
                with recorder.span("inner"):
                    pass
            return recorder.to_jsonl()

        assert run() == run()


class TestNoopSpan:
    def test_is_inert_and_reusable(self):
        with NOOP_SPAN as span:
            assert span.tag(x=1) is span
        with NOOP_SPAN:
            pass
