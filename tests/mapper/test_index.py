"""Tests for the k-mer index (repro.mapper.index)."""

import pytest

from conftest import random_dna
from repro.mapper import KmerIndex, Seed


class TestIndexConstruction:
    def test_indexes_every_position(self, rng):
        reference = random_dna(200, rng)
        index = KmerIndex(reference, k=8)
        for position in range(0, 193, 37):
            kmer = reference[position : position + 8]
            assert position in index.lookup(kmer)

    def test_stride_reduces_entries(self, rng):
        reference = random_dna(500, rng)
        dense = KmerIndex(reference, k=10, stride=1)
        sparse = KmerIndex(reference, k=10, stride=4)
        dense_positions = sum(len(dense.lookup(kmer)) for kmer in
                              {reference[i:i+10] for i in range(0, 491)})
        sparse_positions = sum(len(sparse.lookup(kmer)) for kmer in
                               {reference[i:i+10] for i in range(0, 491)})
        assert sparse_positions < dense_positions / 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            KmerIndex("ACGT", k=0)
        with pytest.raises(ValueError):
            KmerIndex("ACGT", k=8)
        with pytest.raises(ValueError):
            KmerIndex("ACGTACGTACGT", k=4, stride=0)

    def test_lookup_length_checked(self, rng):
        index = KmerIndex(random_dna(100, rng), k=8)
        with pytest.raises(ValueError):
            index.lookup("ACG")


class TestSeeding:
    def test_embedded_read_seeds_on_its_diagonal(self, rng):
        reference = random_dna(400, rng)
        origin = 150
        read = reference[origin : origin + 60]
        index = KmerIndex(reference, k=12)
        diagonals = [seed.diagonal for seed in index.seeds(read)]
        assert diagonals.count(origin) >= 40  # most k-mers vote correctly

    def test_candidate_ranking_puts_origin_first(self, rng):
        reference = random_dna(2_000, rng)
        origin = 700
        read = reference[origin : origin + 100]
        index = KmerIndex(reference, k=14)
        candidates = index.candidate_diagonals(read)
        top_diagonal, votes = candidates[0]
        assert abs(top_diagonal - origin) <= 16  # bucket quantisation
        assert votes >= 50

    def test_seed_dataclass(self):
        seed = Seed(read_offset=5, reference_position=105)
        assert seed.diagonal == 100

    def test_step_sampling(self, rng):
        reference = random_dna(300, rng)
        read = reference[50:150]
        index = KmerIndex(reference, k=10)
        all_seeds = list(index.seeds(read, step=1))
        sampled = list(index.seeds(read, step=5))
        assert len(sampled) < len(all_seeds)
        with pytest.raises(ValueError):
            list(index.seeds(read, step=0))
