"""Tests for the end-to-end read mapper (repro.mapper.mapper)."""

import pytest

from conftest import mutate_dna, random_dna
from repro.core.alphabet import reverse_complement
from repro.mapper import ReadMapper


@pytest.fixture(scope="module")
def reference():
    import random

    return random_dna(10_000, random.Random(0xFEED))


@pytest.fixture(scope="module")
def mapper(reference):
    return ReadMapper(reference, k=14)


class TestForwardMapping:
    def test_perfect_reads_map_to_origin(self, mapper, reference, rng):
        for _ in range(10):
            origin = rng.randrange(0, len(reference) - 150)
            read = reference[origin : origin + 150]
            mapping = mapper.map_read(read)
            assert mapping is not None
            assert mapping.strand == "+"
            assert mapping.score == 0
            assert mapping.position == origin
            mapping.alignment.validate()

    def test_noisy_reads_map_near_origin(self, mapper, reference, rng):
        hits = 0
        for _ in range(15):
            origin = rng.randrange(0, len(reference) - 150)
            read = mutate_dna(reference[origin : origin + 150], 8, rng)
            mapping = mapper.map_read(read)
            if mapping and abs(mapping.position - origin) <= 12:
                assert mapping.score <= 8
                mapping.alignment.validate()
                hits += 1
        assert hits >= 13

    def test_alignment_covers_reported_span(self, mapper, reference, rng):
        origin = rng.randrange(0, len(reference) - 200)
        read = mutate_dna(reference[origin : origin + 200], 10, rng)
        mapping = mapper.map_read(read)
        assert mapping is not None
        assert mapping.alignment.text == reference[mapping.position : mapping.end]


class TestReverseStrand:
    def test_reverse_complement_reads_map_minus(self, mapper, reference, rng):
        for _ in range(5):
            origin = rng.randrange(0, len(reference) - 120)
            read = reverse_complement(reference[origin : origin + 120])
            mapping = mapper.map_read(read)
            assert mapping is not None
            assert mapping.strand == "-"
            assert mapping.position == origin


class TestRejection:
    def test_random_reads_do_not_map(self, mapper, rng):
        unmapped = 0
        for _ in range(10):
            read = random_dna(150, rng)  # unrelated to the reference
            if mapper.map_read(read) is None:
                unmapped += 1
        assert unmapped >= 9

    def test_over_budget_reads_rejected(self, reference, rng):
        strict = ReadMapper(reference, k=14, max_error_rate=0.02)
        origin = rng.randrange(0, len(reference) - 150)
        read = mutate_dna(reference[origin : origin + 150], 20, rng)
        mapping = strict.map_read(read)
        assert mapping is None or mapping.score <= 3

    def test_short_read_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.map_read("ACGT")

    def test_constructor_validation(self, reference):
        with pytest.raises(ValueError):
            ReadMapper(reference, max_error_rate=0.0)
        with pytest.raises(ValueError):
            ReadMapper(reference, min_votes=0)


class TestPipelineAccounting:
    def test_verification_work_is_tracked(self, reference, rng):
        mapper = ReadMapper(reference, k=14)
        origin = rng.randrange(0, len(reference) - 150)
        mapper.map_read(reference[origin : origin + 150])
        assert mapper.stats.total_instructions > 0
        assert mapper.stats.instructions["gmx"] > 0

    def test_batch_mapping(self, mapper, reference, rng):
        reads = [
            reference[o : o + 120]
            for o in (rng.randrange(0, len(reference) - 120) for _ in range(5))
        ]
        mappings = mapper.map_all(reads)
        assert len(mappings) == 5
        assert all(m is not None for m in mappings)
