"""Tests for the synthetic workload generator (repro.workloads.generator)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scalar_edit_distance
from repro.workloads.generator import (
    generate_pair,
    generate_pair_set,
    mutate,
    random_sequence,
)


class TestRandomSequence:
    def test_length_and_alphabet(self):
        rng = random.Random(1)
        sequence = random_sequence(500, rng)
        assert len(sequence) == 500
        assert set(sequence) <= set("ACGT")

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            random_sequence(0, random.Random(1))


class TestMutate:
    def test_zero_error_is_identity(self):
        rng = random.Random(2)
        sequence = random_sequence(100, rng)
        assert mutate(sequence, 0.0, rng) == sequence

    @given(st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=20, deadline=None)
    def test_distance_bounded_by_edit_budget(self, error_rate):
        rng = random.Random(3)
        sequence = random_sequence(200, rng)
        mutated = mutate(sequence, error_rate, rng)
        edits = round(error_rate * 200)
        assert scalar_edit_distance(sequence, mutated) <= edits

    def test_distance_close_to_budget_on_average(self):
        """Edits rarely cancel completely: distance ≈ 0.8–1.0 of budget."""
        rng = random.Random(4)
        total_distance = 0
        total_budget = 0
        for _ in range(20):
            sequence = random_sequence(300, rng)
            mutated = mutate(sequence, 0.1, rng)
            total_distance += scalar_edit_distance(sequence, mutated)
            total_budget += 30
        assert 0.6 * total_budget <= total_distance <= total_budget

    def test_pure_insertion_mix_grows_sequence(self):
        rng = random.Random(5)
        sequence = random_sequence(100, rng)
        mutated = mutate(sequence, 0.2, rng, mix=(0, 1, 0))
        assert len(mutated) == 120

    def test_pure_deletion_mix_shrinks_sequence(self):
        rng = random.Random(6)
        sequence = random_sequence(100, rng)
        mutated = mutate(sequence, 0.2, rng, mix=(0, 0, 1))
        assert len(mutated) == 80

    def test_mismatch_preserves_length_and_changes_characters(self):
        rng = random.Random(7)
        sequence = "A" * 50
        mutated = mutate(sequence, 0.5, rng, mix=(1, 0, 0))
        assert len(mutated) == 50
        # Repeated mismatches at one position can restore the original
        # base, so the changed count is bounded by, not equal to, 25.
        changed = sum(1 for c in mutated if c != "A")
        assert 0 < changed <= 25

    def test_invalid_inputs_rejected(self):
        rng = random.Random(8)
        with pytest.raises(ValueError):
            mutate("ACGT", 1.5, rng)
        with pytest.raises(ValueError):
            mutate("ACGT", 0.1, rng, mix=(0, 0, 0))


class TestPairSets:
    def test_deterministic_given_seed(self):
        a = generate_pair_set("x", 100, 0.05, 5, seed=9)
        b = generate_pair_set("x", 100, 0.05, 5, seed=9)
        assert [p.pattern for p in a] == [p.pattern for p in b]

    def test_different_names_differ(self):
        a = generate_pair_set("x", 100, 0.05, 5, seed=9)
        b = generate_pair_set("y", 100, 0.05, 5, seed=9)
        assert [p.pattern for p in a] != [p.pattern for p in b]

    def test_metadata(self):
        pair_set = generate_pair_set("z", 150, 0.05, 3)
        assert pair_set.length == 150
        assert len(pair_set) == 3
        assert pair_set.total_bases > 0
        for pair in pair_set:
            assert pair.length == 150
            assert pair.error_rate == 0.05

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            generate_pair_set("z", 100, 0.05, 0)

    def test_generate_pair_uses_requested_length(self):
        rng = random.Random(10)
        pair = generate_pair(64, 0.1, rng)
        assert len(pair.pattern) == 64
