"""Tests for the paper's dataset suite (repro.workloads.datasets)."""

import pytest

from repro.workloads.datasets import (
    LONG_LENGTHS,
    SHORT_LENGTHS,
    dataset_registry,
    hifi_like,
    illumina_like,
    long_dataset,
    long_suite,
    scalability_dataset,
    short_dataset,
    short_suite,
)


class TestPaperSuite:
    def test_five_short_datasets(self):
        """§7.1: 100–300 bp in 50 bp steps at 5 % error."""
        suite = short_suite(count=2)
        assert [s.length for s in suite] == [100, 150, 200, 250, 300]
        assert all(s.error_rate == 0.05 for s in suite)

    def test_ten_long_datasets(self):
        """§7.1: 1–10 kbp in 1 kbp steps at 15 % error."""
        suite = long_suite(count=1)
        assert [s.length for s in suite] == list(range(1000, 10001, 1000))
        assert all(s.error_rate == 0.15 for s in suite)

    def test_scalability_dataset(self):
        dataset = scalability_dataset()
        assert dataset.length == 1_000_000
        assert dataset.error_rate == 0.15
        assert len(dataset.pairs[0].pattern) == 1_000_000

    def test_registry_contains_all(self):
        registry = dataset_registry(short_count=1, long_count=1)
        assert len(registry) == len(SHORT_LENGTHS) + len(LONG_LENGTHS)

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            short_dataset(123)
        with pytest.raises(ValueError):
            long_dataset(1500)


class TestFigure3Profiles:
    def test_illumina_like(self):
        dataset = illumina_like(count=3)
        assert dataset.length == 150
        assert dataset.error_rate == pytest.approx(0.005)

    def test_hifi_like_scaled_length(self):
        dataset = hifi_like(length=2000, count=2)
        assert dataset.length == 2000
        assert dataset.error_rate == pytest.approx(0.01)
