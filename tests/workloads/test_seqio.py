"""Tests for sequence I/O (repro.workloads.seqio): .seq, FASTA, FASTQ."""

import pytest

from repro.workloads.generator import generate_pair_set
from repro.workloads.seqio import (
    SeqFormatError,
    detect_format,
    iter_fasta,
    iter_fasta_blocks,
    iter_fastq,
    iter_pairs,
    load_pairs,
    pair_files,
    read_sequences,
    save_pairs,
)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        original = generate_pair_set("io", 80, 0.05, 4, seed=3)
        path = tmp_path / "pairs.seq"
        save_pairs(original, path)
        loaded = load_pairs(path, error_rate=0.05)
        assert [p.pattern for p in loaded] == [p.pattern for p in original]
        assert [p.text for p in loaded] == [p.text for p in original]
        assert loaded.name == "pairs"

    def test_wfa_format_on_disk(self, tmp_path):
        pair_set = generate_pair_set("io", 10, 0.1, 1, seed=4)
        path = tmp_path / "pairs.seq"
        save_pairs(pair_set, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith(">")
        assert lines[1].startswith("<")


class TestMalformedInput:
    def test_text_without_pattern(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text("<ACGT\n")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_dangling_pattern(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text(">ACGT\n")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_bad_prefix(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text("ACGT\n")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seq"
        path.write_text("")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "ok.seq"
        path.write_text("\n>AC\n\n<AG\n\n")
        loaded = load_pairs(path)
        assert len(loaded) == 1

    def test_error_carries_file_record_and_line(self, tmp_path):
        # The robustness contract: one bad record in a big file is
        # locatable from the exception alone.
        path = tmp_path / "bad.seq"
        path.write_text(">AAAA\n<TTTT\n>CCCC\nGGGG\n")
        with pytest.raises(SeqFormatError) as info:
            load_pairs(path)
        exc = info.value
        assert exc.path == str(path)
        assert exc.record == 2
        assert exc.line == 4
        assert str(path) in str(exc)
        assert "line 4" in str(exc)


class TestFasta:
    def test_multi_line_records(self, tmp_path):
        path = tmp_path / "reads.fasta"
        path.write_text(">r1 first read\nACGT\nACGT\n>r2\nTTTT\n")
        records = list(iter_fasta(path))
        assert records == [("r1", "ACGTACGT"), ("r2", "TTTT")]

    def test_truncated_tail_header_rejected(self, tmp_path):
        path = tmp_path / "reads.fasta"
        path.write_text(">r1\nACGT\n>r2\n")
        with pytest.raises(SeqFormatError) as info:
            list(iter_fasta(path))
        assert info.value.record == 2
        assert info.value.line == 3

    def test_sequence_before_header_rejected(self, tmp_path):
        path = tmp_path / "reads.fasta"
        path.write_text("ACGT\n>r1\nACGT\n")
        with pytest.raises(SeqFormatError) as info:
            list(iter_fasta(path))
        assert info.value.line == 1


class TestFastq:
    def test_four_line_records(self, tmp_path):
        path = tmp_path / "reads.fastq"
        path.write_text("@r1\nACGT\n+\nIIII\n@r2 meta\nTT\n+r2\n!!\n")
        records = list(iter_fastq(path))
        assert records == [("r1", "ACGT", "IIII"), ("r2", "TT", "!!")]

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "reads.fastq"
        path.write_text("@r1\nACGT\n+\nIIII\n@r2\nTTTT\n")
        with pytest.raises(SeqFormatError) as info:
            list(iter_fastq(path))
        assert info.value.record == 2
        assert "truncated" in str(info.value)

    def test_quality_length_mismatch_rejected(self, tmp_path):
        path = tmp_path / "reads.fastq"
        path.write_text("@r1\nACGT\n+\nIII\n")
        with pytest.raises(SeqFormatError) as info:
            list(iter_fastq(path))
        assert info.value.record == 1
        assert info.value.line == 4

    def test_missing_plus_separator_rejected(self, tmp_path):
        path = tmp_path / "reads.fastq"
        path.write_text("@r1\nACGT\nIIII\nACGT\n")
        with pytest.raises(SeqFormatError):
            list(iter_fastq(path))


class TestFormatDetection:
    @pytest.mark.parametrize(
        "name, fmt",
        [("a.fasta", "fasta"), ("a.fa", "fasta"), ("a.fna", "fasta"),
         ("a.fastq", "fastq"), ("a.fq", "fastq"), ("a.seq", "seq"),
         ("a.FA", "fasta")],
    )
    def test_by_suffix(self, name, fmt):
        assert detect_format(name) == fmt

    def test_read_sequences_rejects_pair_files(self, tmp_path):
        path = tmp_path / "pairs.seq"
        path.write_text(">AC\n<AG\n")
        with pytest.raises(SeqFormatError):
            list(read_sequences(path))


class TestPairFiles:
    def test_pairs_records_in_order(self, tmp_path):
        patterns = tmp_path / "patterns.fasta"
        patterns.write_text(">p1\nACGT\n>p2\nTTTT\n")
        texts = tmp_path / "texts.fastq"
        texts.write_text("@t1\nACGA\n+\nIIII\n@t2\nTTTA\n+\nIIII\n")
        pairs = list(pair_files(patterns, texts))
        assert [(p.pattern, p.text) for p in pairs] == [
            ("ACGT", "ACGA"), ("TTTT", "TTTA"),
        ]

    def test_record_count_mismatch_names_short_file(self, tmp_path):
        patterns = tmp_path / "patterns.fasta"
        patterns.write_text(">p1\nACGT\n")
        texts = tmp_path / "texts.fasta"
        texts.write_text(">t1\nACGA\n>t2\nTTTT\n")
        with pytest.raises(SeqFormatError) as info:
            list(pair_files(patterns, texts))
        assert info.value.path == str(patterns)
        assert info.value.record == 2


class TestFastaBlocks:
    """iter_fasta_blocks: the streaming input path of repro.stream."""

    def write_fasta(self, tmp_path, records, width=60):
        lines = []
        for name, sequence in records:
            lines.append(f">{name}")
            lines.extend(
                sequence[lo:lo + width]
                for lo in range(0, len(sequence), width)
            )
        path = tmp_path / "ref.fasta"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_blocks_reassemble_wrapped_record(self, tmp_path):
        sequence = ("ACGTAGGTCA" * 701)[:7003]
        path = self.write_fasta(tmp_path, [("chr1", sequence)])
        blocks = list(iter_fasta_blocks(path, block_size=256))
        assert "".join(blocks) == sequence
        # Every block except the final one is exactly block_size.
        assert all(len(block) == 256 for block in blocks[:-1])
        assert 0 < len(blocks[-1]) <= 256

    def test_block_size_exceeding_record_yields_one_block(self, tmp_path):
        sequence = "ACGT" * 50
        path = self.write_fasta(tmp_path, [("chr1", sequence)])
        assert list(iter_fasta_blocks(path, block_size=1 << 20)) == [sequence]

    def test_default_streams_first_record(self, tmp_path):
        path = self.write_fasta(
            tmp_path, [("chrA", "AAAA" * 30), ("chrB", "CCCC" * 30)]
        )
        assert "".join(iter_fasta_blocks(path, block_size=16)) == "AAAA" * 30

    def test_named_record_selected_by_first_token(self, tmp_path):
        path = self.write_fasta(
            tmp_path,
            [("chrA extra description", "AAAA" * 30), ("chrB", "CCCC" * 30)],
        )
        assert (
            "".join(iter_fasta_blocks(path, record="chrB", block_size=16))
            == "CCCC" * 30
        )

    def test_missing_record_rejected(self, tmp_path):
        path = self.write_fasta(tmp_path, [("chrA", "ACGT" * 8)])
        with pytest.raises(SeqFormatError, match="not found"):
            list(iter_fasta_blocks(path, record="chrZ"))

    def test_no_records_rejected(self, tmp_path):
        path = tmp_path / "ref.fasta"
        path.write_text("\n")
        with pytest.raises(SeqFormatError, match="no FASTA records"):
            list(iter_fasta_blocks(path))

    def test_sequence_before_header_rejected(self, tmp_path):
        path = tmp_path / "ref.fasta"
        path.write_text("ACGT\n>late\nACGT\n")
        with pytest.raises(SeqFormatError, match="before the first"):
            list(iter_fasta_blocks(path))

    def test_header_without_sequence_rejected(self, tmp_path):
        path = self.write_fasta(tmp_path, [("chrA", "")])
        with pytest.raises(SeqFormatError, match="no sequence lines"):
            list(iter_fasta_blocks(path, record="chrA"))

    def test_invalid_block_size_rejected(self, tmp_path):
        path = self.write_fasta(tmp_path, [("chrA", "ACGT")])
        with pytest.raises(ValueError, match="block_size"):
            list(iter_fasta_blocks(path, block_size=0))


class TestLargeRecords:
    def test_iter_pairs_streams_records_larger_than_io_buffer(self, tmp_path):
        # A single reference line far larger than any stdio buffer: the
        # pair must arrive intact, in one piece, without materialising
        # the rest of the file.
        big_text = "ACGT" * 100_000  # 400 kB on one line
        path = tmp_path / "big.seq"
        path.write_text(f">AC\n<{big_text}\n>GG\n<GGT\n")
        pairs = list(iter_pairs(path))
        assert [(p.pattern, len(p.text)) for p in pairs] == [
            ("AC", len(big_text)), ("GG", 3),
        ]
        assert pairs[0].text == big_text
