"""Tests for .seq pair I/O (repro.workloads.seqio)."""

import pytest

from repro.workloads.generator import generate_pair_set
from repro.workloads.seqio import SeqFormatError, load_pairs, save_pairs


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        original = generate_pair_set("io", 80, 0.05, 4, seed=3)
        path = tmp_path / "pairs.seq"
        save_pairs(original, path)
        loaded = load_pairs(path, error_rate=0.05)
        assert [p.pattern for p in loaded] == [p.pattern for p in original]
        assert [p.text for p in loaded] == [p.text for p in original]
        assert loaded.name == "pairs"

    def test_wfa_format_on_disk(self, tmp_path):
        pair_set = generate_pair_set("io", 10, 0.1, 1, seed=4)
        path = tmp_path / "pairs.seq"
        save_pairs(pair_set, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith(">")
        assert lines[1].startswith("<")


class TestMalformedInput:
    def test_text_without_pattern(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text("<ACGT\n")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_dangling_pattern(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text(">ACGT\n")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_bad_prefix(self, tmp_path):
        path = tmp_path / "bad.seq"
        path.write_text("ACGT\n")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seq"
        path.write_text("")
        with pytest.raises(SeqFormatError):
            load_pairs(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "ok.seq"
        path.write_text("\n>AC\n\n<AG\n\n")
        loaded = load_pairs(path)
        assert len(loaded) == 1
