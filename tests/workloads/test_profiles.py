"""Tests for sequencing error profiles (repro.workloads.profiles)."""

import random

import pytest

from conftest import scalar_edit_distance
from repro.workloads.profiles import (
    ILLUMINA,
    ONT,
    PACBIO_HIFI,
    PROFILES,
    ErrorProfile,
    apply_profile,
    generate_profiled_pair,
)


class TestProfileDefinitions:
    def test_registry(self):
        assert set(PROFILES) == {"illumina", "pacbio-hifi", "ont"}

    def test_illumina_is_substitution_dominated(self):
        mismatch, insertion, deletion = ILLUMINA.mix
        assert mismatch > 5 * (insertion + deletion) / 2

    def test_ont_is_indel_dominated_and_bursty(self):
        mismatch, insertion, deletion = ONT.mix
        assert insertion + deletion > mismatch
        assert ONT.burst_mean > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorProfile("bad", 1.5, (1, 1, 1))
        with pytest.raises(ValueError):
            ErrorProfile("bad", 0.1, (0, 0, 0))
        with pytest.raises(ValueError):
            ErrorProfile("bad", 0.1, (1, 1, 1), burst_mean=0.5)

    def test_burst_length_mean(self):
        rng = random.Random(1)
        draws = [ONT.burst_length(rng) for _ in range(3000)]
        assert ONT.burst_mean * 0.85 < sum(draws) / len(draws) < ONT.burst_mean * 1.15
        assert ILLUMINA.burst_length(rng) == 1


class TestApplyProfile:
    def test_error_budget_respected(self):
        """Edit distance to the original stays within the base budget."""
        rng = random.Random(2)
        for profile in PROFILES.values():
            sequence = "".join(rng.choice("ACGT") for _ in range(600))
            corrupted = apply_profile(sequence, profile, rng)
            budget = round(profile.error_rate * 600)
            assert scalar_edit_distance(sequence, corrupted) <= budget

    def test_illumina_preserves_length_closely(self):
        rng = random.Random(3)
        sequence = "".join(rng.choice("ACGT") for _ in range(1000))
        corrupted = apply_profile(sequence, ILLUMINA, rng)
        assert abs(len(corrupted) - 1000) <= 3

    def test_ont_produces_indel_runs(self):
        """Bursty profiles must create multi-base gaps in the alignment."""
        from repro.baselines import EdlibAligner

        rng = random.Random(4)
        sequence = "".join(rng.choice("ACGT") for _ in range(800))
        corrupted = apply_profile(sequence, ONT, rng)
        result = EdlibAligner().align(sequence, corrupted)
        cigar = result.alignment.cigar
        # At least one run of ≥2 consecutive insertions or deletions.
        import re

        runs = [
            int(count)
            for count, op in re.findall(r"(\d+)([ID])", cigar)
        ]
        assert runs and max(runs) >= 2

    def test_zero_rate_is_identity(self):
        rng = random.Random(5)
        quiet = ErrorProfile("quiet", 0.0, (1, 1, 1))
        assert apply_profile("ACGTACGT", quiet, rng) == "ACGTACGT"


class TestProfiledPairs:
    def test_pair_generation(self):
        rng = random.Random(6)
        pair = generate_profiled_pair(500, PACBIO_HIFI, rng)
        assert len(pair.pattern) == 500
        assert pair.error_rate == PACBIO_HIFI.error_rate
        assert scalar_edit_distance(pair.pattern, pair.text) <= 5

    def test_aligners_handle_profiled_reads(self):
        """The full pipeline copes with bursty ONT-like divergence."""
        from repro.align import BandedGmxAligner, WindowedGmxAligner

        rng = random.Random(7)
        pair = generate_profiled_pair(700, ONT, rng)
        banded = BandedGmxAligner().align(pair.pattern, pair.text)
        assert banded.exact
        banded.alignment.validate()
        windowed = WindowedGmxAligner().align(pair.pattern, pair.text)
        windowed.alignment.validate()
        assert windowed.score >= banded.score
