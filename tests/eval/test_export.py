"""Tests for the JSON experiment export (repro.eval.export)."""

import json

import pytest

from repro.eval.export import export_json, run_all


@pytest.fixture(scope="module")
def all_results():
    return run_all(quick=True)


class TestRunAll:
    def test_covers_every_experiment(self, all_results):
        expected = {
            "figure3", "figure10", "figure11", "figure12", "figure13",
            "figure14", "figure15", "table1", "table2", "scalability_1mbp",
            "memory_footprint", "tile_costs", "energy", "speedup_summary",
            "lint", "sanitizer", "resilience", "observability", "backends",
            "serving",
        }
        assert set(all_results) == expected

    def test_rows_are_non_empty(self, all_results):
        for name, rows in all_results.items():
            if name in (
                "lint", "sanitizer", "resilience", "observability",
                "backends", "serving",
            ):
                continue  # checked structurally below
            if isinstance(rows, dict):
                assert all(rows.values()), name
            else:
                assert rows, name

    def test_headline_summary_present(self, all_results):
        families = {row["family"] for row in all_results["speedup_summary"]}
        assert "Full(GMX) vs Full(BPM)" in families

    def test_lint_badge_embedded(self, all_results):
        lint = all_results["lint"]
        assert lint["clean"] is True
        assert lint["badge"] == "lint: clean (0 diagnostics)"
        assert lint["diagnostics"] == []
        assert lint["programs_checked"] == lint["programs_clean"] > 0

    def test_sanitizer_badge_embedded(self, all_results):
        status = all_results["sanitizer"]
        assert status["clean"] is True
        assert status["badge"].startswith("sanitizer: clean")
        assert status["worker_reachable"] > 0
        assert status["batches_checked"] >= 1
        assert status["shadow_clean"] is True
        assert status["findings"] == 0
        assert status["dynamic_errors"] == 0
        assert status["shadow_mismatches"] == 0

    def test_resilience_badge_embedded(self, all_results):
        resilience = all_results["resilience"]
        assert resilience["ok"] is True
        assert resilience["identical"] is True
        assert resilience["unaccounted"] == []
        assert resilience["badge"].startswith("resilience: OK")
        assert resilience["counters"]["faults_injected"] > 0

    def test_observability_stamp_embedded(self, all_results):
        status = all_results["observability"]
        assert status["badge"].startswith("observability: 3 kernels")
        assert status["spans"] > 0
        kernels = status["kernels"]
        assert set(kernels) == {"full_gmx", "banded_gmx", "windowed"}
        for name, entry in kernels.items():
            assert entry["pairs"] > 0, name
            assert entry["tiles"] > 0, name
            assert entry["align_ns"]["count"] == entry["pairs"], name

    def test_backends_stamp_embedded(self, all_results):
        import os

        from repro.align.backends import BACKEND_ENV, backend_names

        status = all_results["backends"]
        assert status["identical"] is True
        assert status["default"] == "pure"
        assert status["ambient"] == os.environ.get(BACKEND_ENV, "pure")
        assert status["badge"].startswith("backends:")
        roster = {entry["name"] for entry in status["registered"]}
        assert {"pure", "bitpar"} <= roster
        # Every available non-default backend was differentially checked.
        assert set(status["checked"]) == set(backend_names()) - {"pure"}
        assert status["checked_pairs"] > 0

    def test_serving_stamp_embedded(self, all_results):
        status = all_results["serving"]
        assert status["identical"] is True
        assert status["cache_identical"] is True
        assert status["badge"].startswith("serving: OK")
        assert status["pairs"] > 0
        # Replay pass: every pair answered from the cache, none recomputed.
        assert status["cache"]["hits"] == status["pairs"]
        assert status["requests"]["cached"] == status["pairs"]
        assert status["requests"]["failed"] == 0

    def test_observability_stamp_leaves_obs_disabled(self, all_results):
        from repro.obs import runtime as obs

        assert not obs.enabled()


class TestExportJson:
    def test_roundtrip(self, tmp_path):
        path = export_json(tmp_path / "results.json")
        loaded = json.loads(path.read_text())
        assert "figure10" in loaded
        assert loaded["memory_footprint"][0]["algorithm"] == "Classical DP"
        # The JSON is self-contained: figures carry numbers, not objects.
        row = loaded["figure10"][0]
        assert isinstance(row["alignments_per_second"], (int, float))
