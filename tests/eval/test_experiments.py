"""Tests for the per-figure evaluation harness (repro.eval.experiments).

Each test asserts the *qualitative claim* the corresponding figure makes in
the paper — who wins, with sane magnitudes — rather than exact numbers.
"""

import pytest

from repro.eval import (
    FIGURE10_ALIGNERS,
    figure3,
    figure11,
    figure12,
    figure13,
    figure15,
    memory_footprint_rows,
    scalability_1mbp,
    speedup_summary,
    table1,
    table2,
    throughput_rows,
    tile_cost_table,
)
from repro.eval.reporting import render_table
from repro.sim.soc import GEM5_INORDER, RTL_INORDER


@pytest.fixture(scope="module")
def fig10_rows():
    return throughput_rows(GEM5_INORDER)


class TestFigure10:
    def test_full_coverage(self, fig10_rows):
        datasets = {row["dataset"] for row in fig10_rows}
        assert len(datasets) == 15  # 5 short + 10 long
        aligners = {row["aligner"] for row in fig10_rows}
        assert aligners == set(FIGURE10_ALIGNERS)

    def test_gmx_wins_every_family_on_every_dataset(self, fig10_rows):
        table = {}
        for row in fig10_rows:
            table.setdefault(row["dataset"], {})[row["aligner"]] = row[
                "alignments_per_second"
            ]
        for dataset, values in table.items():
            assert values["Full(GMX)"] > values["Full(BPM)"] > values["Full(DP)"]
            assert values["Banded(GMX)"] > values["Banded(Edlib)"]
            assert values["Windowed(GMX)"] > values["Windowed(GenASM-CPU)"]

    def test_speedup_magnitudes(self, fig10_rows):
        """Order of magnitude of the §7.2 headline ratios."""
        summary = {
            (row["family"], row["kind"]): row["geomean_speedup"]
            for row in speedup_summary(fig10_rows)
        }
        assert 10 < summary[("Full(GMX) vs Full(BPM)", "short")] < 60
        assert 15 < summary[("Full(GMX) vs Full(BPM)", "long")] < 90
        assert summary[("Full(GMX) vs Full(DP)", "short")] > 100
        assert summary[("Full(GMX) vs Full(DP)", "long")] > 300
        assert summary[("Windowed(GMX) vs Windowed(GenASM-CPU)", "long")] > 50

    def test_gmx_gains_grow_with_length(self, fig10_rows):
        """§7.2: GMX improves more on longer sequences."""
        summary = {
            (row["family"], row["kind"]): row["geomean_speedup"]
            for row in speedup_summary(fig10_rows)
        }
        for family in (
            "Full(GMX) vs Full(DP)",
            "Full(GMX) vs Full(BPM)",
            "Banded(GMX) vs Banded(Edlib)",
            "Windowed(GMX) vs Windowed(GenASM-CPU)",
        ):
            assert summary[(family, "long")] > summary[(family, "short")]


class TestFigure11:
    def test_ooo_always_faster(self):
        for row in figure11():
            assert row["ooo_speedup"] > 1.5

    def test_speedup_band(self):
        """Paper reports 2.4–6.4×; our model lands in a comparable band."""
        speedups = [row["ooo_speedup"] for row in figure11()]
        assert min(speedups) > 2.0
        assert max(speedups) < 10.0


class TestFigure12:
    def test_shapes(self):
        results = figure12()
        scaling = results["scaling"]
        at16 = {
            (row["aligner"], row["length"]): row["speedup"]
            for row in scaling
            if row["threads"] == 16
        }
        # Full(BPM) collapses at 10 kbp; GMX full/banded stay near-linear.
        assert at16[("Full(BPM)", 10_000)] < 9
        assert at16[("Full(GMX)", 10_000)] > 12
        assert at16[("Banded(GMX)", 10_000)] > 12
        # Windowed(GMX) is the other sub-linear one (contention).
        assert at16[("Windowed(GMX)", 10_000)] < 12

    def test_bpm_bandwidth_demand(self):
        """Paper: BPM demands >65 % of the DDR4 peak at long lengths."""
        bandwidth = figure12()["bandwidth"]
        bpm_10k = next(
            row
            for row in bandwidth
            if row["aligner"] == "Full(BPM)" and row["length"] == 10_000
        )
        assert bpm_10k["utilization"] > 0.65


class TestFigure13:
    def test_anchors(self):
        rows = figure13()
        gmx = next(row for row in rows if row["component"] == "GMX total")
        assert gmx["area_mm2"] == pytest.approx(0.0216)
        assert gmx["area_fraction"] == pytest.approx(0.017, rel=0.02)
        assert gmx["power_mw"] == pytest.approx(8.47, rel=0.01)


class TestFigure14:
    def test_rtl_ranking_consistent_with_gem5(self):
        """Fig. 14: same ordering as Fig. 10 on the edge SoC."""
        rows = throughput_rows(RTL_INORDER)
        table = {}
        for row in rows:
            table.setdefault(row["dataset"], {})[row["aligner"]] = row[
                "alignments_per_second"
            ]
        for values in table.values():
            assert values["Full(GMX)"] > values["Full(BPM)"]
            assert values["Banded(GMX)"] > values["Banded(Edlib)"]

    def test_bpm_suffers_more_on_the_edge_soc(self, fig10_rows):
        """§7.3: the small hierarchy hurts Full(BPM) more than Full(GMX)."""
        gem5 = {
            (r["dataset"], r["aligner"]): r["alignments_per_second"]
            for r in fig10_rows
        }
        rtl = {
            (r["dataset"], r["aligner"]): r["alignments_per_second"]
            for r in throughput_rows(RTL_INORDER)
        }
        dataset = "10000bp-15%"
        bpm_drop = gem5[(dataset, "Full(BPM)")] / rtl[(dataset, "Full(BPM)")]
        gmx_drop = gem5[(dataset, "Full(GMX)")] / rtl[(dataset, "Full(GMX)")]
        assert bpm_drop > gmx_drop


class TestFigure15:
    def test_paper_ranges(self):
        rows = figure15()
        for row in rows:
            assert 1.0 < row["gmx_vs_genasm"] < 3.0  # paper: 1.3–1.9×
            assert 5.0 < row["gmx_vs_darwin"] < 25.0  # paper: 7.2–16.2×
            assert 0.25 < row["gmx_tpa_vs_genasm"] < 0.7  # paper: 0.35–0.52×


class TestTables:
    def test_table1_covers_table(self):
        rows = table1()
        parameters = {row["parameter"] for row in rows}
        assert "Pipeline" in parameters
        assert "LLC" in parameters

    def test_table2_model_regenerates_gmx_row(self):
        rows = table2()
        modelled = next(r for r in rows if r["study"] == "GMX Unit (this model)")
        published = next(r for r in rows if r["study"] == "GMX Unit")
        assert modelled["pgcups_per_pe"] == published["pgcups_per_pe"]
        assert modelled["area_per_pe"] == pytest.approx(
            published["area_per_pe"], rel=0.1
        )


class TestTextExperiments:
    def test_scalability_1mbp(self):
        rows = {row["aligner"]: row for row in scalability_1mbp()}
        banded = rows["Banded(GMX)"]["alignments_per_second"]
        windowed = rows["Windowed(GMX)"]["alignments_per_second"]
        genasm = rows["GenASM accelerator"]["alignments_per_second"]
        # Paper: 20 al/s banded, 374 al/s windowed, windowed 1.58× GenASM.
        assert 4 < banded < 100
        assert 80 < windowed < 1500
        assert windowed > banded
        assert 0.8 < windowed / genasm < 3.0
        assert rows["Full(GMX) (excluded)"]["dp_footprint_mb"] > 10_000

    def test_memory_footprint_example(self):
        """§3.1: 381.4 / 119.2 / 47.6 MB and the 16× GMX reduction."""
        rows = {row["algorithm"]: row for row in memory_footprint_rows()}
        assert rows["Classical DP"]["footprint_mib"] == pytest.approx(381.5, abs=0.5)
        assert rows["Bitap"]["footprint_mib"] == pytest.approx(119.2, abs=0.5)
        assert rows["BPM"]["footprint_mib"] == pytest.approx(47.7, abs=0.5)
        assert rows["GMX (T=32)"]["reduction_vs_bpm"] == pytest.approx(16.0)

    def test_tile_cost_table(self):
        """§4.2: 12T² GMX vs 17T² BPM vs 7T³ Bitap vs 5T² DP ops."""
        rows = {row["algorithm"]: row for row in tile_cost_table(32)}
        assert rows["GMX-Tile"]["ops_per_tile"] == 12 * 1024
        assert rows["BPM"]["ops_per_tile"] == 17 * 1024
        assert rows["Bitap"]["ops_per_tile"] == 7 * 32**3
        assert rows["GMX-Tile"]["bits_per_tile"] == 4 * 32


class TestEnergyExtension:
    def test_gmx_kernels_most_efficient(self):
        from repro.eval import energy_table

        rows = {row["aligner"]: row for row in energy_table()}
        gmx_best = min(
            rows[label]["pj_per_cell"]
            for label in ("Full(GMX)", "Banded(GMX)", "Windowed(GMX)")
        )
        baseline_best = min(
            rows[label]["pj_per_cell"]
            for label in ("Full(DP)", "Full(BPM)", "Banded(Edlib)")
        )
        assert gmx_best < baseline_best / 10


class TestFigure3:
    def test_edit_distance_fast_and_accurate_on_clean_data(self):
        """The Fig. 3 claim: near-zero deviation, much higher throughput."""
        rows = figure3(hifi_length=600, pairs=4)
        by_key = {(row["dataset"], row["method"]): row for row in rows}
        for dataset in {row["dataset"] for row in rows}:
            edit = by_key[(dataset, "Edlib (edit)")]
            exact = by_key[(dataset, "KSW2 (gap-affine)")]
            assert edit["alignments_per_second"] > 3 * exact["alignments_per_second"]
            assert exact["mean_affine_deviation"] == 0.0
            # Low-divergence data: edit alignments are near-affine-optimal.
            assert edit["mean_affine_deviation"] < 10.0


class TestRendering:
    def test_tables_render(self):
        text = render_table(tile_cost_table(), title="tile costs")
        assert "GMX-Tile" in text
        assert text.count("\n") >= 5
