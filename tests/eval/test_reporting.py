"""Tests for text rendering helpers (repro.eval.reporting)."""

import pytest

from repro.eval.reporting import (
    format_value,
    geometric_mean,
    ratio,
    render_table,
)


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_booleans(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_scientific_for_extremes(self):
        assert "e" in format_value(1.5e7)
        assert "e" in format_value(1.5e-5)

    def test_thousands_separator(self):
        assert format_value(12345.6) == "12,345.6"

    def test_small_floats_three_sig_figs(self):
        assert format_value(0.12345) == "0.123"

    def test_integers_verbatim(self):
        assert format_value(42) == "42"


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            [{"a": 1, "b": "xy"}, {"a": 100, "b": "z"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_explicit_column_order(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_missing_cells_render_dash(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text.splitlines()[2]

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="empty")


class TestMath:
    def test_ratio(self):
        assert ratio(6, 3) == 2.0
        assert ratio(1, 0) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, -3]) == 0.0  # non-positive filtered

    def test_geometric_mean_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)
