"""Shadow-execution conformance: parallel and serial must agree per shard.

Every backend-capable GMX kernel runs a seeded batch through the sharded
parallel engine while :func:`repro.analysis.sanitizer.shadow_execute`
re-executes sampled shards serially and diffs content digests of scores,
CIGARs, and kernel stats.  The digests must match bit-for-bit on every
backend; when they do not, the diverging shard is shrunk (ddmin, see
:func:`tests.conformance.oracle.shrink_shard`) to a minimal reproducer
whose assertion message names the backend and worker count.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
from repro.align.backends import backend_names
from repro.analysis.sanitizer import sanitize, shadow_execute
from repro.workloads.generator import generate_pair

from .oracle import edit_distance, shrink_shard

TILE_SIZE = 8
PAIRS = 12
SHARD_SIZE = 3
WORKERS = 2
SAMPLE = 4  # == number of shards: every shard is shadow-verified

BACKENDS = tuple(backend_names())

KERNELS = {
    "full-gmx": lambda backend: FullGmxAligner(
        tile_size=TILE_SIZE, backend=backend
    ),
    "banded-gmx": lambda backend: BandedGmxAligner(
        tile_size=TILE_SIZE, backend=backend
    ),
    "windowed-gmx": lambda backend: WindowedGmxAligner(
        tile_size=TILE_SIZE, backend=backend
    ),
}


class DriftingAligner(FullGmxAligner):
    """Rigged kernel for the shrink test: misbehaves on one poisoned
    pattern, but only after a pickle round-trip (the shadow copy), so the
    serial re-execution diverges from the inline parallel pass.
    Module-level because ``_worker_copy`` pickles it.
    """

    def align(self, pattern, text, *, traceback=True):
        result = super().align(pattern, text, traceback=traceback)
        if pattern.startswith("AAAA") and getattr(self, "_copied", False):
            result.score += 1
        return result

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._copied = True


def _case_seed(kernel, backend):
    """Stable per-(kernel, backend) seed (``hash()`` is randomized)."""
    return zlib.crc32(f"{kernel}:{backend}".encode())


def _pairs(seed, count=PAIRS, length=40):
    rng = random.Random(seed)
    return [
        (pair.pattern, pair.text)
        for pair in (generate_pair(length, 0.12, rng) for _ in range(count))
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_shadow_digests_identical(kernel, backend):
    aligner = KERNELS[kernel](backend)
    report = shadow_execute(
        aligner,
        _pairs(seed=_case_seed(kernel, backend)),
        workers=WORKERS,
        shard_size=SHARD_SIZE,
        sample=SAMPLE,
        seed=17,
    )
    assert report.sampled, "shadow pass must sample at least one shard"
    for mismatch in report.mismatches:
        # shadow_execute already shrank the shard; fail with the replay
        # recipe (backend + workers + minimal pairs) spelled out.
        pytest.fail(mismatch.render())
    assert report.clean


@pytest.mark.parametrize("backend", BACKENDS)
def test_shadow_under_armed_session(backend):
    """Shadowing composes with the registry guards (the CI configuration)."""
    aligner = FullGmxAligner(tile_size=TILE_SIZE, backend=backend)
    with sanitize():
        report = shadow_execute(
            aligner,
            _pairs(seed=101),
            workers=WORKERS,
            shard_size=SHARD_SIZE,
            sample=2,
            seed=3,
        )
    assert report.clean, "\n".join(m.render() for m in report.mismatches)


def test_shadow_scores_agree_with_oracle():
    """The shadowed batch is also right, not just self-consistent."""
    pairs = _pairs(seed=55, count=8)
    aligner = FullGmxAligner(tile_size=TILE_SIZE)
    report = shadow_execute(
        aligner, pairs, workers=WORKERS, shard_size=2, sample=4, seed=0
    )
    assert report.clean
    for pattern, text in pairs:
        assert aligner.align(pattern, text).score == edit_distance(
            pattern, text
        )


def test_diverging_shard_shrinks_to_named_reproducer():
    """A rigged mismatch must shrink and name backend + worker count."""
    pairs = _pairs(seed=77, count=6, length=24)
    pairs[4] = ("AAAA" + pairs[4][0], pairs[4][1])
    report = shadow_execute(
        DriftingAligner(tile_size=TILE_SIZE),
        pairs,
        workers=1,  # inline parallel pass: live instance, no pickle copy
        shard_size=3,
        sample=2,
        seed=0,
    )
    assert not report.clean
    (mismatch,) = report.mismatches
    assert len(mismatch.minimal_pairs) == 1
    assert mismatch.minimal_pairs[0][0].startswith("AAAA")
    rendered = mismatch.render()
    assert "backend" in rendered and "worker" in rendered


def test_oracle_shrink_shard_minimises():
    trace = []

    def still_fails(shard):
        trace.append(tuple(shard))
        return "poison" in shard

    minimal = shrink_shard(["a", "b", "poison", "c", "d", "e"], still_fails)
    assert minimal == ["poison"]
    assert all("poison" in shard for shard in trace if shard == ("poison",))
