"""Property-based conformance suite: every kernel vs the scalar oracle.

Each kernel is driven over a seeded sweep of random tiles — lengths from
1 up to 4x the tile size, error rates 0–40%, plus adversarial specials —
and its score is checked against the independent Wagner–Fischer oracle in
:mod:`tests.conformance.oracle` (and, transitively, against the BPM and
Edlib baselines, which run as kernels of the same sweep).  On a mismatch
the failing pair is shrunk to a minimal reproducer and the assertion
message prints everything needed to replay it: pattern, text, kernel,
and case seed.
"""

from __future__ import annotations

import pytest

from repro.align import (
    AutoAligner,
    BandedGmxAligner,
    FullGmxAligner,
    WindowedGmxAligner,
)
from repro.baselines import (
    BpmAligner,
    EdlibAligner,
    HirschbergAligner,
    NeedlemanWunschAligner,
    WfaAligner,
)

from .oracle import edit_distance, generate_case, shrink_case

TILE_SIZE = 8
MIN_LENGTH = 1
MAX_LENGTH = 4 * TILE_SIZE
MAX_ERROR = 0.40
CASES_PER_KERNEL = 64
SEED_BASE = 0x5EED

#: name -> (fresh-aligner factory, kernel is exact for every input).
KERNELS = {
    "full-gmx": (lambda: FullGmxAligner(tile_size=TILE_SIZE), True),
    "full-gmx-fused": (
        lambda: FullGmxAligner(tile_size=TILE_SIZE, fused=True),
        True,
    ),
    "banded-gmx": (lambda: BandedGmxAligner(tile_size=TILE_SIZE), True),
    "windowed-gmx": (lambda: WindowedGmxAligner(tile_size=TILE_SIZE), False),
    "auto": (lambda: AutoAligner(tile_size=TILE_SIZE), True),
    "nw": (NeedlemanWunschAligner, True),
    "bpm": (BpmAligner, True),
    "edlib": (EdlibAligner, True),
    "hirschberg": (HirschbergAligner, True),
    "wfa": (WfaAligner, True),
}


def case_seed(kernel: str, index: int) -> int:
    """Stable per-case seed (printed in failure repros)."""
    return SEED_BASE + 10_000 * sorted(KERNELS).index(kernel) + index


def check_pair(kernel: str, pattern: str, text: str) -> str:
    """Run one pair through ``kernel``; returns "" or a defect description."""
    factory, always_exact = KERNELS[kernel]
    aligner = factory()
    expected = edit_distance(pattern, text)
    try:
        result = aligner.align(pattern, text)
    except Exception as exc:  # crash is a conformance failure too
        return f"raised {type(exc).__name__}: {exc}"
    if always_exact and result.score != expected:
        return f"score {result.score} != oracle {expected}"
    if not always_exact:
        if result.score < expected:
            return f"score {result.score} below oracle {expected}"
        if result.exact and result.score != expected:
            return (
                f"claims exact but score {result.score} != oracle {expected}"
            )
    if result.alignment is not None:
        try:
            result.alignment.validate()
        except Exception as exc:
            return f"alignment failed validation: {exc}"
        if always_exact and result.alignment.score != result.score:
            return (
                f"alignment scores {result.alignment.score}, "
                f"result says {result.score}"
            )
    return ""


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_conforms_to_oracle(kernel):
    for index in range(CASES_PER_KERNEL):
        seed = case_seed(kernel, index)
        pattern, text = generate_case(
            seed,
            min_length=MIN_LENGTH,
            max_length=MAX_LENGTH,
            max_error=MAX_ERROR,
        )
        defect = check_pair(kernel, pattern, text)
        if defect:
            small_pattern, small_text = shrink_case(
                pattern, text, lambda p, t: bool(check_pair(kernel, p, t))
            )
            small_defect = check_pair(kernel, small_pattern, small_text)
            pytest.fail(
                "conformance failure\n"
                f"  kernel : {kernel}\n"
                f"  seed   : {seed} (case {index})\n"
                f"  defect : {small_defect or defect}\n"
                f"  pattern: {small_pattern!r}\n"
                f"  text   : {small_text!r}\n"
                f"  (original pair: {pattern!r} / {text!r})"
            )


def test_sweep_is_large_and_diverse():
    """The sweep meets the coverage floor: >=500 cases, full length range."""
    total = CASES_PER_KERNEL * len(KERNELS)
    assert total >= 500
    lengths = set()
    for index in range(CASES_PER_KERNEL):
        pattern, text = generate_case(
            case_seed("full-gmx", index),
            min_length=MIN_LENGTH,
            max_length=MAX_LENGTH,
            max_error=MAX_ERROR,
        )
        lengths.add(len(pattern))
        assert 1 <= len(pattern) <= 2 * MAX_LENGTH
        assert len(text) >= 1
    assert len(lengths) > 10  # the generator sweeps lengths, not one point


def test_shrinker_minimises_a_planted_defect():
    """The shrinker itself: a planted predicate shrinks to a 1-base repro."""

    def fails(pattern, text):
        return "G" in pattern and len(text) >= 1

    pattern, text = shrink_case("ACGTACGT", "TTTT", fails)
    assert pattern == "G"
    assert text == "T"


def test_oracle_matches_known_distances():
    """Spot-check the oracle against hand-computed distances."""
    assert edit_distance("", "") == 0
    assert edit_distance("ACGT", "ACGT") == 0
    assert edit_distance("ACGT", "") == 4
    assert edit_distance("", "ACGT") == 4
    assert edit_distance("ACGT", "AGT") == 1
    assert edit_distance("ACGT", "ACCT") == 1
    assert edit_distance("AAAA", "TTTT") == 4
    assert edit_distance("kitten", "sitting") == 3
