"""Property-based conformance suite: every kernel vs the scalar oracle.

Each kernel is driven over a seeded sweep of random tiles — lengths from
1 up to 4x the tile size, error rates 0–40%, plus adversarial specials —
and its score is checked against the independent Wagner–Fischer oracle in
:mod:`tests.conformance.oracle` (and, transitively, against the BPM and
Edlib baselines, which run as kernels of the same sweep).  On a mismatch
the failing pair is shrunk to a minimal reproducer and the assertion
message prints everything needed to replay it: pattern, text, kernel,
backend, and case seed.

Backend-capable kernels (the GMX aligners) run the whole sweep once per
registered kernel backend (pure loop, bit-parallel, numpy when present);
the per-case seed depends only on the kernel name, so every backend sees
byte-identical inputs and the sweep doubles as a cross-backend
differential check against the oracle.
"""

from __future__ import annotations

import pytest

from repro.align import (
    AutoAligner,
    BandedGmxAligner,
    FullGmxAligner,
    WindowedGmxAligner,
)
from repro.align.backends import DEFAULT_BACKEND, backend_names
from repro.baselines import (
    BpmAligner,
    EdlibAligner,
    HirschbergAligner,
    NeedlemanWunschAligner,
    WfaAligner,
)

from .oracle import edit_distance, generate_case, shrink_case

TILE_SIZE = 8
MIN_LENGTH = 1
MAX_LENGTH = 4 * TILE_SIZE
MAX_ERROR = 0.40
CASES_PER_KERNEL = 64
SEED_BASE = 0x5EED

#: Every registered, importable kernel backend (pure is always first).
BACKENDS = tuple(backend_names())

#: name -> (factory(backend) -> aligner, kernel is exact for every input).
#: Baseline factories ignore the backend argument — they have no tile
#: kernel to swap — and run only under the default backend id.
KERNELS = {
    "full-gmx": (
        lambda backend: FullGmxAligner(tile_size=TILE_SIZE, backend=backend),
        True,
    ),
    "full-gmx-fused": (
        lambda backend: FullGmxAligner(
            tile_size=TILE_SIZE, fused=True, backend=backend
        ),
        True,
    ),
    "banded-gmx": (
        lambda backend: BandedGmxAligner(tile_size=TILE_SIZE, backend=backend),
        True,
    ),
    "windowed-gmx": (
        lambda backend: WindowedGmxAligner(
            tile_size=TILE_SIZE, backend=backend
        ),
        False,
    ),
    "auto": (
        lambda backend: AutoAligner(tile_size=TILE_SIZE, backend=backend),
        True,
    ),
    "nw": (lambda backend: NeedlemanWunschAligner(), True),
    "bpm": (lambda backend: BpmAligner(), True),
    "edlib": (lambda backend: EdlibAligner(), True),
    "hirschberg": (lambda backend: HirschbergAligner(), True),
    "wfa": (lambda backend: WfaAligner(), True),
}

#: Kernels whose factory actually honours the backend argument.
BACKEND_CAPABLE = frozenset(
    {"full-gmx", "full-gmx-fused", "banded-gmx", "windowed-gmx", "auto"}
)


def sweep_params():
    """(kernel, backend) matrix: GMX kernels x all backends, rest x pure."""
    params = []
    for kernel in sorted(KERNELS):
        backends = BACKENDS if kernel in BACKEND_CAPABLE else (DEFAULT_BACKEND,)
        for backend in backends:
            params.append(pytest.param(kernel, backend, id=f"{kernel}-{backend}"))
    return params


def case_seed(kernel: str, index: int) -> int:
    """Stable per-case seed (printed in failure repros).

    Depends only on the kernel name — every backend replays the exact
    same pair set, so a backend-specific failure is directly diffable
    against the pure run of the same case.
    """
    return SEED_BASE + 10_000 * sorted(KERNELS).index(kernel) + index


def check_pair(kernel: str, pattern: str, text: str, backend: str) -> str:
    """Run one pair through ``kernel``; returns "" or a defect description."""
    factory, always_exact = KERNELS[kernel]
    aligner = factory(backend)
    expected = edit_distance(pattern, text)
    try:
        result = aligner.align(pattern, text)
    except Exception as exc:  # crash is a conformance failure too
        return f"raised {type(exc).__name__}: {exc}"
    if always_exact and result.score != expected:
        return f"score {result.score} != oracle {expected}"
    if not always_exact:
        if result.score < expected:
            return f"score {result.score} below oracle {expected}"
        if result.exact and result.score != expected:
            return (
                f"claims exact but score {result.score} != oracle {expected}"
            )
    if result.alignment is not None:
        try:
            result.alignment.validate()
        except Exception as exc:
            return f"alignment failed validation: {exc}"
        if always_exact and result.alignment.score != result.score:
            return (
                f"alignment scores {result.alignment.score}, "
                f"result says {result.score}"
            )
    return ""


@pytest.mark.parametrize("kernel,backend", sweep_params())
def test_kernel_conforms_to_oracle(kernel, backend):
    for index in range(CASES_PER_KERNEL):
        seed = case_seed(kernel, index)
        pattern, text = generate_case(
            seed,
            min_length=MIN_LENGTH,
            max_length=MAX_LENGTH,
            max_error=MAX_ERROR,
        )
        defect = check_pair(kernel, pattern, text, backend)
        if defect:
            small_pattern, small_text = shrink_case(
                pattern,
                text,
                lambda p, t: bool(check_pair(kernel, p, t, backend)),
            )
            small_defect = check_pair(kernel, small_pattern, small_text, backend)
            pytest.fail(
                "conformance failure\n"
                f"  kernel : {kernel}\n"
                f"  backend: {backend}\n"
                f"  seed   : {seed} (case {index})\n"
                f"  defect : {small_defect or defect}\n"
                f"  pattern: {small_pattern!r}\n"
                f"  text   : {small_text!r}\n"
                f"  (original pair: {pattern!r} / {text!r})"
            )


def test_sweep_is_large_and_diverse():
    """The sweep meets the coverage floor: >=500 cases, full length range."""
    total = CASES_PER_KERNEL * len(sweep_params())
    assert total >= 500
    lengths = set()
    for index in range(CASES_PER_KERNEL):
        pattern, text = generate_case(
            case_seed("full-gmx", index),
            min_length=MIN_LENGTH,
            max_length=MAX_LENGTH,
            max_error=MAX_ERROR,
        )
        lengths.add(len(pattern))
        assert 1 <= len(pattern) <= 2 * MAX_LENGTH
        assert len(text) >= 1
    assert len(lengths) > 10  # the generator sweeps lengths, not one point


def test_shrinker_minimises_a_planted_defect():
    """The shrinker itself: a planted predicate shrinks to a 1-base repro."""

    def fails(pattern, text):
        return "G" in pattern and len(text) >= 1

    pattern, text = shrink_case("ACGTACGT", "TTTT", fails)
    assert pattern == "G"
    assert text == "T"


def test_oracle_matches_known_distances():
    """Spot-check the oracle against hand-computed distances."""
    assert edit_distance("", "") == 0
    assert edit_distance("ACGT", "ACGT") == 0
    assert edit_distance("ACGT", "") == 4
    assert edit_distance("", "ACGT") == 4
    assert edit_distance("ACGT", "AGT") == 1
    assert edit_distance("ACGT", "ACCT") == 1
    assert edit_distance("AAAA", "TTTT") == 4
    assert edit_distance("kitten", "sitting") == 3
