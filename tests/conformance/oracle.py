"""Self-contained scalar oracle for the conformance suite.

Everything here is deliberately independent of :mod:`repro` — no imports
from the library under test — so the conformance suite checks every
kernel against a second implementation written from the textbook
recurrence, not against the library's own DP code.  Keep it boring: the
oracle's only virtue is that it is obviously correct.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

DNA = "ACGT"


def edit_distance(pattern: str, text: str) -> int:
    """Unit-cost Levenshtein distance via the Wagner–Fischer recurrence.

    Two-row rolling DP; O(len(pattern) * len(text)) time, O(len(text))
    space.  Global alignment: both sequences consumed end to end.
    """
    previous = list(range(len(text) + 1))
    for i, p in enumerate(pattern, start=1):
        current = [i] + [0] * len(text)
        for j, t in enumerate(text, start=1):
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (p != t),
            )
        previous = current
    return previous[len(text)]


def random_dna(length: int, rng: random.Random) -> str:
    """Uniform random DNA string of exactly ``length`` bases."""
    return "".join(rng.choice(DNA) for _ in range(length))


def mutate(sequence: str, error_rate: float, rng: random.Random) -> str:
    """Apply substitutions/insertions/deletions at ``error_rate`` per base.

    Mirrors how read simulators derive a read from a reference; the
    result may be empty when deletions hit every base of a short input.
    """
    out: List[str] = []
    for base in sequence:
        if rng.random() < error_rate:
            kind = rng.choice("sid")
            if kind == "s":
                out.append(rng.choice(DNA.replace(base, "")))
            elif kind == "i":
                out.append(base)
                out.append(rng.choice(DNA))
            # deletion: emit nothing
        else:
            out.append(base)
    return "".join(out)


def generate_case(
    seed: int, *, min_length: int, max_length: int, max_error: float
) -> Tuple[str, str]:
    """Seeded (pattern, text) pair for conformance case ``seed``.

    Sweeps lengths across [min_length, max_length] and error rates across
    [0, max_error]; every ~8th case is an adversarial special (equal
    pair, single-base pattern, homopolymers, unrelated sequences) rather
    than a mutated read, so the suite exercises the DP's corner rows.
    """
    rng = random.Random(seed)
    length = rng.randint(min_length, max_length)
    special = seed % 8
    if special == 0:
        text = random_dna(length, rng)
        return text, text
    if special == 1:
        return random_dna(1, rng), random_dna(length, rng)
    if special == 2:
        base = rng.choice(DNA)
        other = rng.choice(DNA.replace(base, ""))
        return base * length, (base * (length // 2) + other * length)
    if special == 3:
        return random_dna(length, rng), random_dna(max(1, length // 2), rng)
    error = rng.uniform(0.0, max_error)
    pattern = random_dna(length, rng)
    text = mutate(pattern, error, rng) or rng.choice(DNA)
    return pattern, text


def shrink_case(
    pattern: str, text: str, still_fails: Callable[[str, str], bool]
) -> Tuple[str, str]:
    """Greedy ddmin-style shrink of a failing (pattern, text) pair.

    Repeatedly tries dropping halves, then single characters, from each
    sequence while ``still_fails`` keeps returning True, yielding the
    minimal reproducer printed in the assertion message.
    """

    def shrink_one(fixed_other: str, seq: str, seq_is_pattern: bool) -> str:
        def fails(candidate: str) -> bool:
            if seq_is_pattern:
                return still_fails(candidate, fixed_other)
            return still_fails(fixed_other, candidate)

        changed = True
        while changed:
            changed = False
            # Drop progressively smaller chunks, then single characters.
            chunk = max(1, len(seq) // 2)
            while chunk >= 1:
                start = 0
                while start < len(seq):
                    candidate = seq[:start] + seq[start + chunk:]
                    if candidate != seq and fails(candidate):
                        seq = candidate
                        changed = True
                    else:
                        start += chunk
                chunk //= 2
        return seq

    for _ in range(4):  # alternate until a fixed point
        new_pattern = shrink_one(text, pattern, True)
        new_text = shrink_one(new_pattern, text, False)
        if (new_pattern, new_text) == (pattern, text):
            break
        pattern, text = new_pattern, new_text
    return pattern, text


def shrink_shard(
    items: Sequence, still_fails: Callable[[List], bool]
) -> List:
    """Greedy ddmin over a *list* of items (shards, pairs, cases).

    The sequence-level twin of :func:`shrink_case`: repeatedly drops
    halves, then single items, while ``still_fails`` keeps returning
    True on the shrunk list.  Used by the shadow-conformance suite to
    reduce a diverging shard to the minimal set of pairs that still
    reproduces the parallel-vs-serial mismatch.  Deliberately
    repro-import-free, like everything else in this oracle.
    """
    items = list(items)
    changed = True
    while changed:
        changed = False
        chunk = max(1, len(items) // 2)
        while chunk >= 1:
            start = 0
            while start < len(items):
                candidate = items[:start] + items[start + chunk:]
                if candidate != items and still_fails(candidate):
                    items = candidate
                    changed = True
                else:
                    start += chunk
            chunk //= 2
    return items
