"""Tests for the fault-tolerant batch engine (repro.resilience.engine)."""

import pytest

from repro.align import FullGmxAligner, align_batch
from repro.align.batch import BatchResult
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ResilientBatchResult,
    RetryPolicy,
    align_batch_resilient,
)
from repro.workloads import generate_pair_set


@pytest.fixture(scope="module")
def pairs():
    return list(
        generate_pair_set("resilience", length=48, error_rate=0.1, count=6, seed=3)
    )


@pytest.fixture(scope="module")
def aligner():
    return FullGmxAligner(tile_size=8)


@pytest.fixture(scope="module")
def reference(aligner, pairs):
    return align_batch(aligner, pairs)


def _plan(pair_count, *specs):
    return FaultPlan(seed=0, pair_count=pair_count, faults=tuple(specs))


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=5)
        assert policy.delay(3, 1) == policy.delay(3, 1)

    def test_delay_grows_with_attempt(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0, jitter=0.0)
        assert policy.delay(0, 3) > policy.delay(0, 1)

    def test_distinct_keys_decorrelate(self):
        policy = RetryPolicy(seed=5, jitter=0.5)
        assert policy.delay(1, 1) != policy.delay(2, 1)


class TestHealthyRuns:
    def test_identical_to_serial_batch(self, aligner, pairs, reference):
        batch = align_batch_resilient(aligner, pairs, shard_size=2)
        assert isinstance(batch, ResilientBatchResult)
        assert isinstance(batch, BatchResult)
        assert batch.results == reference.results
        assert batch.stats == reference.stats
        assert batch.quarantined == []
        assert batch.ledger == []
        assert batch.telemetry.executor == "resilient-inline"

    def test_empty_batch(self, aligner):
        batch = align_batch_resilient(aligner, [])
        assert batch.results == []
        assert batch.telemetry.resilience.faults_detected == 0


class TestTransientFaults:
    """Each fault fires once; retries run clean, so output is byte-identical."""

    def test_crash_is_retried(self, aligner, pairs, reference):
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="worker", kind="crash",
                      pair_index=2, seed=5),
        )
        batch = align_batch_resilient(
            aligner, pairs, shard_size=2, fault_plan=plan, max_retries=2
        )
        assert batch.results == reference.results
        assert batch.stats == reference.stats
        counters = batch.telemetry.resilience
        assert counters.faults_injected == 1
        assert counters.crashes >= 1
        assert counters.retries >= 1
        assert [record.outcome for record in batch.ledger] == ["retried"]

    def test_hang_hits_the_deadline(self, aligner, pairs, reference):
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="worker", kind="hang",
                      pair_index=0, seed=5),
        )
        batch = align_batch_resilient(
            aligner, pairs, shard_size=2, fault_plan=plan,
            shard_timeout=0.2, max_retries=2,
        )
        assert batch.results == reference.results
        counters = batch.telemetry.resilience
        assert counters.timeouts >= 1
        assert batch.ledger[0].outcome == "retried"

    def test_data_garble_caught_by_checksum(self, aligner, pairs, reference):
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="data", kind="garble",
                      pair_index=3, seed=7),
        )
        batch = align_batch_resilient(
            aligner, pairs, shard_size=2, fault_plan=plan, max_retries=2
        )
        assert batch.results == reference.results
        assert batch.telemetry.resilience.data_faults >= 1
        assert batch.ledger[0].outcome == "retried"

    def test_hardware_bitflip_caught_by_cross_check(
        self, aligner, pairs, reference
    ):
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="hardware", kind="bitflip",
                      pair_index=1, seed=1),
        )
        batch = align_batch_resilient(
            aligner, pairs, shard_size=2, fault_plan=plan,
            cross_check=True, max_retries=2,
        )
        assert batch.results == reference.results
        counters = batch.telemetry.resilience
        assert counters.faults_detected >= 1
        assert batch.ledger[0].outcome == "retried"

    def test_unpicklable_reply_detected(self, aligner, pairs, reference):
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="worker", kind="unpicklable",
                      pair_index=4, seed=5),
        )
        batch = align_batch_resilient(
            aligner, pairs, shard_size=2, fault_plan=plan, max_retries=2
        )
        assert batch.results == reference.results
        assert batch.ledger[0].outcome == "retried"


class TestDegradationChain:
    def test_persistent_fault_bisects_then_falls_back(
        self, aligner, pairs, reference
    ):
        # A crash that re-fires on every attempt can never be retried away:
        # the shard must be bisected down to the poison pair, which is then
        # answered by the fallback aligner in the parent.
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="worker", kind="crash",
                      pair_index=1, seed=5, persistent=True),
        )
        batch = align_batch_resilient(
            aligner, pairs, shard_size=4, fault_plan=plan, max_retries=1
        )
        scores = [result.score for result in batch.results]
        assert scores == [result.score for result in reference.results]
        counters = batch.telemetry.resilience
        assert counters.bisections >= 1
        assert counters.fallbacks == 1
        assert batch.ledger[0].outcome == "degraded"
        assert batch.quarantined == []

    def test_organic_poison_pair_is_quarantined(self, aligner):
        # An empty pattern is rejected by the GMX aligner AND the BPM
        # fallback — the full chain fails, the pair is excluded and
        # reported, and the batch still completes.
        poison = [("ACGT", "ACGA"), ("", "ACGT"), ("GGGG", "GGGT")]
        batch = align_batch_resilient(
            aligner, poison, shard_size=3, max_retries=0
        )
        assert len(batch.results) == 2
        assert [result.score for result in batch.results] == [1, 1]
        assert len(batch.quarantined) == 1
        assert batch.quarantined[0].index == 1
        assert batch.quarantined[0].pattern == ""
        assert "fallback" in batch.quarantined[0].reason
        assert batch.telemetry.resilience.quarantined_pairs == 1


class TestCheckpointResume:
    def test_resume_replays_journalled_shards(
        self, aligner, pairs, reference, tmp_path
    ):
        journal = str(tmp_path / "run.journal")
        first = align_batch_resilient(
            aligner, pairs, shard_size=2, checkpoint=journal
        )
        assert first.results == reference.results
        counters = first.telemetry.resilience
        assert counters.checkpoints_written == 3
        assert counters.shards_resumed == 0

        second = align_batch_resilient(
            aligner, pairs, shard_size=2, checkpoint=journal
        )
        assert second.results == reference.results
        assert second.stats == reference.stats
        counters = second.telemetry.resilience
        assert counters.shards_resumed == 3
        assert counters.checkpoints_written == 0

    def test_resume_skips_completed_work_under_faults(
        self, aligner, pairs, reference, tmp_path
    ):
        # Same plan, same journal: the first run absorbs the crash and
        # journals every shard, so the resumed run replays from disk and
        # no fault ever gets to fire — the ledger says so explicitly.
        journal = str(tmp_path / "run.journal")
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="worker", kind="crash",
                      pair_index=2, seed=5),
        )
        first = align_batch_resilient(
            aligner, pairs, shard_size=2, checkpoint=journal, fault_plan=plan
        )
        assert first.results == reference.results
        assert first.telemetry.resilience.crashes >= 1

        resumed = align_batch_resilient(
            aligner, pairs, shard_size=2, checkpoint=journal, fault_plan=plan
        )
        assert resumed.results == reference.results
        assert resumed.ledger[0].outcome == "resumed"
        assert resumed.telemetry.resilience.crashes == 0
        assert resumed.telemetry.resilience.shards_resumed == 3

    def test_journal_with_different_plan_is_rejected(
        self, aligner, pairs, tmp_path
    ):
        # The plan fingerprint is part of the journal identity: resuming a
        # fault-free journal under a fault plan would mix two different
        # runs, and is refused rather than silently accepted.
        from repro.resilience import CheckpointError

        journal = str(tmp_path / "run.journal")
        align_batch_resilient(aligner, pairs, shard_size=2, checkpoint=journal)
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="worker", kind="crash",
                      pair_index=2, seed=5),
        )
        with pytest.raises(CheckpointError):
            align_batch_resilient(
                aligner, pairs, shard_size=2, checkpoint=journal,
                fault_plan=plan,
            )


@pytest.mark.slow
class TestProcessPool:
    """The supervised multiprocessing path (skipped where unavailable)."""

    def test_pool_matches_serial(self, aligner, pairs, reference):
        batch = align_batch_resilient(
            aligner, pairs, workers=2, shard_size=2, shard_timeout=30.0
        )
        if batch.telemetry.executor == "resilient-inline":
            pytest.skip("no usable multiprocessing start method")
        assert batch.results == reference.results
        assert batch.stats == reference.stats

    def test_pool_survives_a_crash(self, aligner, pairs, reference):
        plan = _plan(
            6,
            FaultSpec(fault_id=0, layer="worker", kind="crash",
                      pair_index=2, seed=5),
        )
        batch = align_batch_resilient(
            aligner, pairs, workers=2, shard_size=2,
            fault_plan=plan, max_retries=2, shard_timeout=30.0,
        )
        if batch.telemetry.executor == "resilient-inline":
            pytest.skip("no usable multiprocessing start method")
        assert batch.results == reference.results
        assert batch.ledger[0].outcome == "retried"
