"""Chaos campaigns: injected faults must never change the batch output.

The quick campaign runs in every tier; the full campaigns carry the
``chaos`` marker (``make test-chaos`` / the CI chaos job) but execute in
the default suite too — they ARE the acceptance criterion of the
resilience engine.
"""

import pytest

from repro.resilience import ACCOUNTED_OUTCOMES, run_campaign
from repro.resilience.campaign import CampaignReport


class TestQuickCampaign:
    def test_inline_campaign_survives(self):
        report = run_campaign(
            seed=7, faults=6, pairs=8, length=48,
            workers=1, shard_size=3, shard_timeout=2.0,
        )
        assert report.identical
        assert report.unaccounted == []
        assert report.ok
        assert report.counters.faults_injected == 6

    def test_report_round_trips_to_dict(self):
        report = run_campaign(
            seed=7, faults=3, pairs=6, length=32,
            workers=1, shard_size=3, shard_timeout=2.0,
        )
        data = report.to_dict()
        assert data["seed"] == 7
        assert data["identical"] is True
        assert isinstance(report.render(), str)
        assert "verdict" in report.render()

    def test_campaign_replays_exactly(self):
        a = run_campaign(
            seed=13, faults=4, pairs=6, length=32,
            workers=1, shard_size=3, shard_timeout=2.0,
        )
        b = run_campaign(
            seed=13, faults=4, pairs=6, length=32,
            workers=1, shard_size=3, shard_timeout=2.0,
        )
        assert a.ledger == b.ledger
        assert a.counters == b.counters
        assert a.ok and b.ok


@pytest.mark.chaos
class TestFullCampaigns:
    def test_default_campaign_is_clean(self):
        # The exact configuration CI and `make test-chaos` run.
        report = run_campaign(seed=7, faults=25)
        assert isinstance(report, CampaignReport)
        assert report.identical, report.render()
        assert report.unaccounted == [], report.render()
        assert report.ok

    @pytest.mark.slow
    def test_hundred_fault_campaign_is_byte_identical(self):
        # The acceptance criterion: >=100 seeded faults across all three
        # layers, output byte-identical to the fault-free serial run, and
        # every fault accounted as detected/retried/degraded/quarantined.
        report = run_campaign(
            seed=11, faults=100, pairs=100, workers=4, shard_size=4,
            shard_timeout=1.0, max_retries=3,
        )
        assert report.identical, report.render()
        assert report.counters.faults_injected == 100
        for record in report.ledger:
            assert record.outcome in ACCOUNTED_OUTCOMES, record
        assert report.ok

    def test_checkpointed_campaign_survives(self, tmp_path):
        report = run_campaign(
            seed=7, faults=10, pairs=16, workers=2, shard_size=4,
            shard_timeout=1.0, checkpoint=str(tmp_path / "chaos.journal"),
        )
        assert report.ok, report.render()
