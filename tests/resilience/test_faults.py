"""Tests for fault plans and specs (repro.resilience.faults)."""

import pytest

from repro.resilience import (
    LAYER_KINDS,
    LAYERS,
    FaultError,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
)
from repro.resilience.faults import FaultPlanError


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(
            fault_id=0, layer="worker", kind="crash", pair_index=3, seed=1
        )
        assert not spec.persistent
        assert "worker" in spec.describe()
        assert "crash" in spec.describe()

    def test_unknown_layer_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(fault_id=0, layer="cosmic", kind="ray", pair_index=0, seed=0)

    def test_kind_must_match_layer(self):
        # "crash" is a worker kind, not a hardware kind.
        with pytest.raises(FaultPlanError):
            FaultSpec(
                fault_id=0, layer="hardware", kind="crash", pair_index=0, seed=0
            )

    def test_negative_pair_index_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(
                fault_id=0, layer="data", kind="garble", pair_index=-1, seed=0
            )

    def test_dict_round_trip(self):
        spec = FaultSpec(
            fault_id=7, layer="data", kind="truncate", pair_index=2, seed=99,
            persistent=True,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_generation_is_deterministic(self):
        a = FaultPlan.generate(seed=42, faults=20, pair_count=50)
        b = FaultPlan.generate(seed=42, faults=20, pair_count=50)
        assert a == b
        assert a.fingerprint == b.fingerprint

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(seed=1, faults=20, pair_count=50)
        b = FaultPlan.generate(seed=2, faults=20, pair_count=50)
        assert a.faults != b.faults
        assert a.fingerprint != b.fingerprint

    def test_every_generated_fault_in_range(self):
        plan = FaultPlan.generate(seed=3, faults=40, pair_count=10)
        for spec in plan.faults:
            assert 0 <= spec.pair_index < 10
            assert spec.layer in LAYERS
            assert spec.kind in LAYER_KINDS[spec.layer]

    def test_layer_restriction(self):
        plan = FaultPlan.generate(
            seed=3, faults=15, pair_count=10, layers=("data",)
        )
        assert all(spec.layer == "data" for spec in plan.faults)
        counts = plan.by_layer()
        assert counts["data"] == 15
        assert counts["hardware"] == 0
        assert counts["worker"] == 0

    def test_json_round_trip(self):
        plan = FaultPlan.generate(seed=11, faults=12, pair_count=30)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_persistent_copy(self):
        plan = FaultPlan.generate(seed=11, faults=12, pair_count=30)
        sticky = plan.persistent()
        assert all(spec.persistent for spec in sticky.faults)
        # The original is untouched (specs are frozen; the copy is new).
        assert not any(spec.persistent for spec in plan.faults)

    def test_for_pairs_selects_by_absolute_index(self):
        plan = FaultPlan.generate(seed=5, faults=30, pair_count=20)
        window = plan.for_pairs(5, 10)
        assert all(5 <= spec.pair_index < 10 for spec in window)
        outside = [
            spec for spec in plan.faults if not 5 <= spec.pair_index < 10
        ]
        assert len(window) + len(outside) == len(plan.faults)

    def test_duplicate_fault_ids_rejected(self):
        spec = FaultSpec(
            fault_id=0, layer="worker", kind="crash", pair_index=0, seed=0
        )
        with pytest.raises(FaultPlanError):
            FaultPlan(seed=0, pair_count=4, faults=(spec, spec))

    def test_out_of_range_target_rejected(self):
        spec = FaultSpec(
            fault_id=0, layer="worker", kind="crash", pair_index=9, seed=0
        )
        with pytest.raises(FaultPlanError):
            FaultPlan(seed=0, pair_count=4, faults=(spec,))


class TestErrorHierarchy:
    def test_injected_crash_is_a_fault_error(self):
        assert issubclass(InjectedCrashError, FaultError)
        assert issubclass(FaultError, RuntimeError)

    def test_plan_error_is_a_value_error(self):
        assert issubclass(FaultPlanError, ValueError)
