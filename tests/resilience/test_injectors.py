"""Tests for the three fault-injector layers (repro.resilience.injectors)."""

import pytest

from repro.align import FullGmxAligner
from repro.core.isa import fault_injection
from repro.resilience import (
    FaultHookChain,
    FaultSpec,
    HardwareFaultInjector,
    InjectedCrashError,
    apply_worker_fault,
    corrupt_pair,
    corrupt_shard,
    pair_checksum,
)


def _spec(layer, kind, seed=1, pair_index=0, persistent=False):
    return FaultSpec(
        fault_id=0, layer=layer, kind=kind, pair_index=pair_index, seed=seed,
        persistent=persistent,
    )


class TestPairChecksum:
    def test_order_sensitive(self):
        assert pair_checksum("ACGT", "TTTT") != pair_checksum("TTTT", "ACGT")

    def test_separator_prevents_boundary_aliasing(self):
        assert pair_checksum("AC", "GT") != pair_checksum("ACG", "T")

    def test_detects_single_substitution(self):
        assert pair_checksum("ACGT", "ACGT") != pair_checksum("ACGT", "ACGA")


class TestHardwareInjector:
    def test_rejects_non_hardware_spec(self):
        with pytest.raises(ValueError):
            HardwareFaultInjector(_spec("worker", "crash"))

    def test_bitflip_strikes_exactly_one_output(self):
        spec = _spec("hardware", "bitflip", seed=9)
        injector = HardwareFaultInjector(spec)
        outputs = [injector.on_tile_output("gmx.v", 0, 32) for _ in range(8)]
        corrupted = [value for value in outputs if value != 0]
        assert len(corrupted) == 1
        assert injector.fired
        # Exactly one bit, inside the 2T-bit image.
        assert bin(corrupted[0]).count("1") == 1
        assert corrupted[0] < 1 << 64

    def test_bitflip_is_deterministic(self):
        spec = _spec("hardware", "bitflip", seed=9)
        first = HardwareFaultInjector(spec)
        second = HardwareFaultInjector(spec)
        for _ in range(6):
            assert first.on_tile_output("gmx.v", 0, 32) == second.on_tile_output(
                "gmx.v", 0, 32
            )

    def test_stuck_pollutes_every_output(self):
        spec = _spec("hardware", "stuck", seed=4)
        injector = HardwareFaultInjector(spec)
        outputs = [injector.on_tile_output("gmx.h", 0, 16) for _ in range(5)]
        assert injector.fired
        assert len(set(outputs)) == 1  # same stuck bit every time
        assert outputs[0] != 0

    def test_stuck_masked_when_bit_already_high(self):
        spec = _spec("hardware", "stuck", seed=4)
        probe = HardwareFaultInjector(spec)
        stuck_bit = probe.on_tile_output("gmx.h", 0, 16)
        injector = HardwareFaultInjector(spec)
        value = injector.on_tile_output("gmx.h", stuck_bit, 16)
        assert value == stuck_bit
        assert not injector.fired  # armed, but changed nothing

    def test_csr_corrupts_one_string_write(self):
        spec = _spec("hardware", "csr", seed=13)
        injector = HardwareFaultInjector(spec)
        chunk = "ACGTACGT"
        writes = [injector.on_csr_write("gmx_pattern", chunk) for _ in range(4)]
        mutated = [value for value in writes if value != chunk]
        assert len(mutated) == 1
        assert injector.fired
        assert len(mutated[0]) == len(chunk)
        diffs = [i for i, (a, b) in enumerate(zip(chunk, mutated[0])) if a != b]
        assert len(diffs) == 1
        assert mutated[0][diffs[0]] in "ACGT"

    def test_csr_perturbs_integer_write(self):
        spec = _spec("hardware", "csr", seed=21)
        injector = HardwareFaultInjector(spec)
        values = [injector.on_csr_write("gmx_pos", 0) for _ in range(4)]
        mutated = [value for value in values if value != 0]
        assert len(mutated) == 1
        assert bin(mutated[0]).count("1") == 1

    def test_chain_composes_injectors(self):
        flip = HardwareFaultInjector(_spec("hardware", "bitflip", seed=9))
        stuck = HardwareFaultInjector(_spec("hardware", "stuck", seed=4))
        chain = FaultHookChain([flip, stuck])
        outputs = [chain.on_tile_output("gmx.v", 0, 32) for _ in range(8)]
        assert stuck.fired
        assert flip.fired
        assert all(value != 0 for value in outputs)  # stuck bit everywhere

    def test_ambient_hook_corrupts_a_real_alignment(self):
        # Arm a bitflip via the ISA-level ambient hook and align for real:
        # the aligner constructs its own GmxIsa instances, so this only
        # works if the ambient hook reaches them.
        aligner = FullGmxAligner(tile_size=8)
        pattern = "ACGTACGTACGTACGT" * 4
        text = "ACGAACGTACGTACGT" * 4
        healthy = aligner.align(pattern, text)
        injector = HardwareFaultInjector(_spec("hardware", "stuck", seed=2))
        with fault_injection(injector):
            # A stuck output bit either skews the result or produces an
            # illegal Δ encoding downstream — both count as corruption.
            try:
                faulty = aligner.align(pattern, text)
                corrupted = (
                    faulty.score != healthy.score
                    or faulty.cigar != healthy.cigar
                )
            except Exception:
                corrupted = True
        assert injector.fired
        assert corrupted
        # Outside the context the hook is disarmed again.
        assert aligner.align(pattern, text).score == healthy.score


class TestWorkerFaults:
    def test_crash_raises_injected_error(self):
        with pytest.raises(InjectedCrashError):
            apply_worker_fault(
                _spec("worker", "crash"), hang_seconds=0.0, slow_seconds=0.0
            )

    def test_unpicklable_returns_marker(self):
        marker = apply_worker_fault(
            _spec("worker", "unpicklable"), hang_seconds=0.0, slow_seconds=0.0
        )
        assert marker == "unpicklable"

    def test_hang_and_slow_return_none(self):
        assert apply_worker_fault(
            _spec("worker", "hang"), hang_seconds=0.0, slow_seconds=0.0
        ) is None
        assert apply_worker_fault(
            _spec("worker", "slow"), hang_seconds=0.0, slow_seconds=0.0
        ) is None

    def test_rejects_non_worker_spec(self):
        with pytest.raises(ValueError):
            apply_worker_fault(
                _spec("data", "garble"), hang_seconds=0.0, slow_seconds=0.0
            )


class TestDataFaults:
    def test_truncate_shortens_one_side(self):
        pattern, text = corrupt_pair(
            _spec("data", "truncate", seed=3), "ACGTACGT", "ACGTACGT"
        )
        assert (pattern, text) != ("ACGTACGT", "ACGTACGT")
        changed = pattern if pattern != "ACGTACGT" else text
        untouched = text if pattern != "ACGTACGT" else pattern
        assert len(changed) < 8
        assert "ACGTACGT".startswith(changed)
        assert untouched == "ACGTACGT"

    def test_garble_keeps_length(self):
        pattern, text = corrupt_pair(
            _spec("data", "garble", seed=3), "ACGTACGT", "ACGTACGT"
        )
        changed = pattern if pattern != "ACGTACGT" else text
        assert len(changed) == 8
        diffs = [
            i for i, (a, b) in enumerate(zip("ACGTACGT", changed)) if a != b
        ]
        assert len(diffs) == 1

    def test_deterministic(self):
        spec = _spec("data", "truncate", seed=17)
        assert corrupt_pair(spec, "ACGTAC", "GTACGT") == corrupt_pair(
            spec, "ACGTAC", "GTACGT"
        )

    def test_empty_sequence_unchanged(self):
        spec = _spec("data", "truncate", seed=17)
        pattern, text = corrupt_pair(spec, "", "")
        assert (pattern, text) == ("", "")

    def test_corrupt_shard_targets_absolute_indices(self):
        shard = [("AAAA", "AAAA"), ("CCCC", "CCCC"), ("GGGG", "GGGG")]
        specs = [
            _spec("data", "garble", seed=3, pair_index=11),   # -> shard[1]
            _spec("data", "garble", seed=5, pair_index=99),   # out of range
        ]
        mutated = corrupt_shard(specs, shard, lo=10)
        assert mutated[0] == shard[0]
        assert mutated[2] == shard[2]
        assert mutated[1] != shard[1]
        # Detection mechanism: the checksum diverges exactly at the target.
        assert pair_checksum(*mutated[1]) != pair_checksum(*shard[1])
