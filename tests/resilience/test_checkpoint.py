"""Tests for the checkpoint journal (repro.resilience.checkpoint)."""

import pytest

from repro.align import FullGmxAligner
from repro.resilience import (
    CheckpointError,
    CheckpointJournal,
    deserialize_result,
    serialize_result,
)


@pytest.fixture
def results():
    aligner = FullGmxAligner(tile_size=8)
    return [
        aligner.align("ACGTACGTAC", "ACGAACGTAC"),
        aligner.align("GGGGCCCC", "GGGTCCCC"),
    ]


class TestResultSerialisation:
    def test_round_trip_is_lossless(self, results):
        for result in results:
            clone = deserialize_result(serialize_result(result))
            assert clone == result
            clone.alignment.validate()

    def test_round_trip_without_traceback(self):
        result = FullGmxAligner(tile_size=8).align(
            "ACGTACGT", "ACGAACGT", traceback=False
        )
        clone = deserialize_result(serialize_result(result))
        assert clone == result
        assert clone.alignment is None

    def test_serialised_form_is_json_safe(self, results):
        import json

        json.dumps(serialize_result(results[0]))


class TestJournal:
    META = {"aligner": "FullGmxAligner", "traceback": True, "plan": None}

    def test_create_record_reload(self, tmp_path, results):
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        assert journal.writes == 1

        reopened = CheckpointJournal(path, self.META)
        looked_up = reopened.lookup(0, 2, checksum=123)
        assert looked_up is not None
        restored, quarantined = looked_up
        assert restored == results
        assert quarantined == []

    def test_unknown_range_returns_none(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal", self.META)
        assert journal.lookup(0, 4, checksum=0) is None

    def test_checksum_mismatch_raises(self, tmp_path, results):
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, self.META).lookup(0, 2, checksum=999)

    def test_foreign_run_meta_rejected(self, tmp_path):
        path = tmp_path / "run.journal"
        CheckpointJournal(path, self.META)
        other = dict(self.META, aligner="BpmAligner")
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, other)

    def test_non_journal_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.journal"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, self.META)

    def test_torn_trailing_write_dropped_with_warning(self, tmp_path, results):
        """A crash mid-append leaves a torn tail; resume must survive it.

        The torn record was never acknowledged to the engine, so dropping
        it is safe — the item simply re-runs.  Intact records before the
        tear must still load.
        """
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        with path.open("a") as handle:
            handle.write('{"lo": 2, "hi": 4, "chec')  # torn write
        with pytest.warns(UserWarning, match="torn trailing journal entry"):
            reopened = CheckpointJournal(path, self.META)
        looked_up = reopened.lookup(0, 2, checksum=123)
        assert looked_up is not None
        assert looked_up[0] == results
        assert reopened.lookup(2, 4, checksum=0) is None
        # The journal stays usable: the re-run item can be re-recorded.
        reopened.record(2, 4, checksum=456, results=results)
        assert CheckpointJournal(path, self.META).has(2, 4)

    def test_torn_tail_valid_json_wrong_shape_dropped(self, tmp_path, results):
        """A tail that parses but lacks lo/hi is equally torn — drop it."""
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        with path.open("a") as handle:
            handle.write('{"garbage": true}\n')
        with pytest.warns(UserWarning, match="torn trailing"):
            reopened = CheckpointJournal(path, self.META)
        assert reopened.lookup(0, 2, checksum=123) is not None

    def test_mid_file_garbage_still_rejected_loudly(self, tmp_path, results):
        """Garbage *followed by* intact records is corruption, not a torn
        append — refuse to guess."""
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        with path.open("a") as handle:
            handle.write('{"lo": 2, "hi": 4, "chec\n')  # torn mid-file
        with path.open("a") as handle:
            entry = journal.entries[(0, 2)].copy()
            entry["lo"], entry["hi"] = 2, 4
            import json

            handle.write(json.dumps(entry) + "\n")  # intact record after
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, self.META)

    def test_record_provenance_epoch_and_node(self, tmp_path, results):
        """Dist provenance fields round-trip without affecting lookup."""
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(
            0, 2, checksum=123, results=results, epoch=3, node="node-1"
        )
        reopened = CheckpointJournal(path, self.META)
        assert reopened.has(0, 2)
        assert not reopened.has(2, 4)
        entry = reopened.entries[(0, 2)]
        assert entry["epoch"] == 3
        assert entry["node"] == "node-1"
        assert reopened.lookup(0, 2, checksum=123) is not None
