"""Tests for the checkpoint journal (repro.resilience.checkpoint)."""

import pytest

from repro.align import FullGmxAligner
from repro.resilience import (
    CheckpointError,
    CheckpointJournal,
    deserialize_result,
    serialize_result,
)


@pytest.fixture
def results():
    aligner = FullGmxAligner(tile_size=8)
    return [
        aligner.align("ACGTACGTAC", "ACGAACGTAC"),
        aligner.align("GGGGCCCC", "GGGTCCCC"),
    ]


class TestResultSerialisation:
    def test_round_trip_is_lossless(self, results):
        for result in results:
            clone = deserialize_result(serialize_result(result))
            assert clone == result
            clone.alignment.validate()

    def test_round_trip_without_traceback(self):
        result = FullGmxAligner(tile_size=8).align(
            "ACGTACGT", "ACGAACGT", traceback=False
        )
        clone = deserialize_result(serialize_result(result))
        assert clone == result
        assert clone.alignment is None

    def test_serialised_form_is_json_safe(self, results):
        import json

        json.dumps(serialize_result(results[0]))


class TestJournal:
    META = {"aligner": "FullGmxAligner", "traceback": True, "plan": None}

    def test_create_record_reload(self, tmp_path, results):
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        assert journal.writes == 1

        reopened = CheckpointJournal(path, self.META)
        looked_up = reopened.lookup(0, 2, checksum=123)
        assert looked_up is not None
        restored, quarantined = looked_up
        assert restored == results
        assert quarantined == []

    def test_unknown_range_returns_none(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal", self.META)
        assert journal.lookup(0, 4, checksum=0) is None

    def test_checksum_mismatch_raises(self, tmp_path, results):
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, self.META).lookup(0, 2, checksum=999)

    def test_foreign_run_meta_rejected(self, tmp_path):
        path = tmp_path / "run.journal"
        CheckpointJournal(path, self.META)
        other = dict(self.META, aligner="BpmAligner")
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, other)

    def test_non_journal_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.journal"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, self.META)

    def test_torn_trailing_write_rejected_loudly(self, tmp_path, results):
        path = tmp_path / "run.journal"
        journal = CheckpointJournal(path, self.META)
        journal.record(0, 2, checksum=123, results=results)
        with path.open("a") as handle:
            handle.write('{"lo": 2, "hi": 4, "chec')  # torn write
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, self.META)
