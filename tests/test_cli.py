"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestAlign:
    def test_paper_example(self, capsys):
        assert main(["align", "GCAT", "GATT", "--tile-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "score=2" in out
        assert "cigar=" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["full-gmx", "banded-gmx", "windowed-gmx", "nw", "bpm", "edlib",
         "bitap", "genasm", "darwin"],
    )
    def test_every_algorithm_runs(self, algorithm, capsys):
        assert main(["align", "ACGTACGT", "ACGAACGT", "--algorithm", algorithm]) == 0
        assert "score=" in capsys.readouterr().out

    def test_infix_mode_reports_span(self, capsys):
        assert (
            main(["align", "AACGT", "TTTTAACGTTTTT", "--mode", "infix"]) == 0
        )
        out = capsys.readouterr().out
        assert "score=0" in out
        assert "span=4:9" in out

    def test_stats_flag(self, capsys):
        assert main(["align", "ACGT", "ACGT", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "instructions=" in out
        assert "dp_cells=" in out

    def test_no_traceback(self, capsys):
        assert main(["align", "ACGT", "ACGA", "--no-traceback"]) == 0
        assert "cigar" not in capsys.readouterr().out

    def test_missing_operands_fails(self, capsys):
        assert main(["align"]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerateAndPairs:
    def test_generate_then_align_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "pairs.seq")
        assert (
            main(
                ["generate", "--length", "80", "--count", "4", "--out", path]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["align", "--pairs", path, "--algorithm", "edlib"]) == 0
        out = capsys.readouterr().out
        assert out.count("score=") == 4


class TestExperiment:
    @pytest.mark.parametrize("name", ["memory", "tilecost", "table1", "table2",
                                      "fig13", "energy"])
    def test_cheap_experiments_render(self, name, capsys):
        assert main(["experiment", name]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") > 3

    def test_fig12_renders_both_panels(self, capsys):
        assert main(["experiment", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "scaling" in out
        assert "bandwidth" in out


class TestDesign:
    def test_paper_design_point(self, capsys):
        assert main(["design", "--tile-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "1024 GCUPS" in out
        assert "0.0216" in out
        assert "2 cycles" in out


class TestVerify:
    def test_self_check_passes(self, capsys):
        assert main(["verify", "--pairs", "8"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")
        assert "8 random pairs" in out

    def test_seeded_determinism(self, capsys):
        assert main(["verify", "--pairs", "5", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["verify", "--pairs", "5", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_strict_mode_runs_static_analysis(self, capsys):
        assert main(["verify", "--pairs", "3", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "strict mode" in out
        assert "verified clean" in out


class TestLint:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["lint", "--pairs", "1", "--tile-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "[program-verifier] clean" in out
        assert "[repo-lint] clean" in out

    def test_corpus_exits_nonzero(self, capsys):
        code = main(["lint", "--corpus", "--skip-streams", "--skip-repo"])
        assert code == 1
        out = capsys.readouterr().out
        assert "malformed corpus:" in out
        assert "GMX00" in out

    def test_corpus_cases_all_match_annotations(self, capsys):
        main(["lint", "--corpus", "--skip-streams", "--skip-repo",
              "--format", "json"])
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["corpus_cases"] >= 10
        assert payload["corpus_matched"] == payload["corpus_cases"]

    def test_json_format_clean(self, capsys):
        assert main(
            ["lint", "--pairs", "1", "--tile-size", "8", "--format", "json"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["summary"]["total"] == 0
        assert payload["programs_checked"] == payload["programs_clean"] > 0

    def test_program_file_clean(self, tmp_path, capsys):
        from repro.core.encoding import encode, encode_csr

        listing = "\n".join(
            f"{word:08x}"
            for word in [
                encode_csr("csrrw", "gmx_pattern", 0, 1),
                encode_csr("csrrw", "gmx_text", 0, 2),
                encode("gmx.v", 5, 0, 0),
            ]
        )
        path = tmp_path / "prog.hex"
        path.write_text(listing + "\n")
        assert main(["lint", "--program", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_program_file_single_port_vh(self, tmp_path, capsys):
        from repro.core.encoding import encode, encode_csr

        listing = "\n".join(
            f"{word:08x}"
            for word in [
                encode_csr("csrrw", "gmx_pattern", 0, 1),
                encode_csr("csrrw", "gmx_text", 0, 2),
                encode("gmx.vh", 4, 0, 0),
            ]
        )
        path = tmp_path / "vh.hex"
        path.write_text(listing + "\n")
        assert main(["lint", "--program", str(path), "--single-port"]) == 1
        assert "GMX007" in capsys.readouterr().out


class TestFusedAlign:
    def test_fused_matches_unfused(self, capsys):
        assert main(["align", "GCATGCAT", "GATTGCAT", "--fused"]) == 0
        fused = capsys.readouterr().out
        assert main(["align", "GCATGCAT", "GATTGCAT"]) == 0
        assert capsys.readouterr().out == fused


class TestResilientAlign:
    def _write_pairs(self, tmp_path):
        path = str(tmp_path / "pairs.seq")
        assert (
            main(["generate", "--length", "40", "--count", "4", "--out", path])
            == 0
        )
        return path

    def test_resilience_flags_route_through_resilient_engine(
        self, tmp_path, capsys
    ):
        path = self._write_pairs(tmp_path)
        capsys.readouterr()
        assert main(["align", "--pairs", path, "--max-retries", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("score=") == 4
        assert "resilience:" in out

    def test_checkpoint_flag_writes_journal(self, tmp_path, capsys):
        path = self._write_pairs(tmp_path)
        journal = tmp_path / "run.journal"
        capsys.readouterr()
        assert main(["align", "--pairs", path, "--checkpoint", str(journal)]) == 0
        assert journal.exists()
        assert "repro-batch-journal" in journal.read_text()

    def test_plain_align_stays_on_plain_engine(self, tmp_path, capsys):
        path = self._write_pairs(tmp_path)
        capsys.readouterr()
        assert main(["align", "--pairs", path, "--stats"]) == 0
        assert "resilience:" not in capsys.readouterr().out


class TestChaos:
    def test_small_campaign_passes(self, capsys):
        assert (
            main(
                ["chaos", "--seed", "7", "--faults", "4", "--pairs", "6",
                 "--length", "32", "--workers", "1", "--shard-size", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "verdict: OK" in out
        assert "identical to fault-free serial run: yes" in out

    def test_json_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        assert (
            main(
                ["chaos", "--seed", "7", "--faults", "3", "--pairs", "6",
                 "--length", "32", "--workers", "1", "--shard-size", "3",
                 "--json", str(report_path)]
            )
            == 0
        )
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["counters"]["faults_injected"] == 3
