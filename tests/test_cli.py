"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestAlign:
    def test_paper_example(self, capsys):
        assert main(["align", "GCAT", "GATT", "--tile-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "score=2" in out
        assert "cigar=" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["full-gmx", "banded-gmx", "windowed-gmx", "nw", "bpm", "edlib",
         "bitap", "genasm", "darwin"],
    )
    def test_every_algorithm_runs(self, algorithm, capsys):
        assert main(["align", "ACGTACGT", "ACGAACGT", "--algorithm", algorithm]) == 0
        assert "score=" in capsys.readouterr().out

    def test_infix_mode_reports_span(self, capsys):
        assert (
            main(["align", "AACGT", "TTTTAACGTTTTT", "--mode", "infix"]) == 0
        )
        out = capsys.readouterr().out
        assert "score=0" in out
        assert "span=4:9" in out

    def test_stats_flag(self, capsys):
        assert main(["align", "ACGT", "ACGT", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "instructions=" in out
        assert "dp_cells=" in out

    def test_no_traceback(self, capsys):
        assert main(["align", "ACGT", "ACGA", "--no-traceback"]) == 0
        assert "cigar" not in capsys.readouterr().out

    def test_missing_operands_fails(self, capsys):
        assert main(["align"]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerateAndPairs:
    def test_generate_then_align_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "pairs.seq")
        assert (
            main(
                ["generate", "--length", "80", "--count", "4", "--out", path]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["align", "--pairs", path, "--algorithm", "edlib"]) == 0
        out = capsys.readouterr().out
        assert out.count("score=") == 4


class TestExperiment:
    @pytest.mark.parametrize("name", ["memory", "tilecost", "table1", "table2",
                                      "fig13", "energy"])
    def test_cheap_experiments_render(self, name, capsys):
        assert main(["experiment", name]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") > 3

    def test_fig12_renders_both_panels(self, capsys):
        assert main(["experiment", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "scaling" in out
        assert "bandwidth" in out


class TestDesign:
    def test_paper_design_point(self, capsys):
        assert main(["design", "--tile-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "1024 GCUPS" in out
        assert "0.0216" in out
        assert "2 cycles" in out


class TestVerify:
    def test_self_check_passes(self, capsys):
        assert main(["verify", "--pairs", "8"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")
        assert "8 random pairs" in out

    def test_seeded_determinism(self, capsys):
        assert main(["verify", "--pairs", "5", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["verify", "--pairs", "5", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first
