"""Tests for the windowed heuristic driver and Windowed(GMX)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.align import FullGmxAligner, WindowedAligner, WindowedGmxAligner

dna = st.text(alphabet="ACGT", min_size=1, max_size=80)


class TestWindowedGmx:
    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_always_produces_valid_upper_bound(self, pattern, text):
        """Windowed is a heuristic: valid alignment, score ≥ optimal."""
        result = WindowedGmxAligner(tile_size=8).align(pattern, text)
        result.alignment.validate()
        assert result.score >= scalar_edit_distance(pattern, text)
        assert not result.exact

    def test_optimal_on_low_divergence(self, rng):
        """On low-error pairs (the windowed use case) it finds the optimum."""
        hits = 0
        for _ in range(20):
            pattern = random_dna(400, rng)
            text = mutate_dna(pattern, 8, rng)
            result = WindowedGmxAligner(tile_size=16).align(pattern, text)
            hits += result.score == scalar_edit_distance(pattern, text)
        assert hits >= 18

    def test_single_window_equals_full(self, rng):
        """Pairs smaller than W are solved exactly in one window."""
        pattern = random_dna(60, rng)
        text = mutate_dna(pattern, 20, rng)
        result = WindowedGmxAligner(window=96, overlap=32, tile_size=32).align(
            pattern, text
        )
        assert result.score == scalar_edit_distance(pattern, text)

    def test_paper_window_defaults(self):
        aligner = WindowedGmxAligner(tile_size=32)
        assert aligner.window == 96  # W = 3T
        assert aligner.overlap == 32  # O = T

    def test_constant_memory(self, rng):
        """DP state is one window regardless of sequence length (§4.1)."""
        short = WindowedGmxAligner(tile_size=8).align(
            random_dna(100, rng), random_dna(100, rng)
        )
        long = WindowedGmxAligner(tile_size=8).align(
            random_dna(1000, rng), random_dna(1000, rng)
        )
        assert long.stats.dp_bytes_peak == short.stats.dp_bytes_peak

    def test_progress_on_adversarial_input(self):
        """Pathological inputs must terminate (≥1 op committed per window)."""
        result = WindowedGmxAligner(window=8, overlap=4, tile_size=4).align(
            "A" * 200, "T" * 200
        )
        result.alignment.validate()

    def test_extreme_length_asymmetry(self, rng):
        result = WindowedGmxAligner(tile_size=8).align(
            random_dna(5, rng), random_dna(300, rng)
        )
        result.alignment.validate()


class TestDriverValidation:
    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedGmxAligner(window=0)

    def test_overlap_must_be_smaller_than_window(self):
        with pytest.raises(ValueError):
            WindowedGmxAligner(window=32, overlap=32)
        with pytest.raises(ValueError):
            WindowedGmxAligner(window=32, overlap=-1)

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            WindowedGmxAligner().align("", "A")


class TestGenericDriver:
    def test_wraps_any_inner_aligner(self, rng):
        """The driver is inner-agnostic: wrapping Full(GMX) by hand works."""
        inner = FullGmxAligner(tile_size=8)
        driver = WindowedAligner(inner=inner, window=48, overlap=16)
        pattern = random_dna(300, rng)
        text = mutate_dna(pattern, 6, rng)
        result = driver.align(pattern, text)
        result.alignment.validate()
        assert result.score >= scalar_edit_distance(pattern, text)

    def test_overlap_improves_stitching(self, rng):
        """More overlap can only help (never worsens) the heuristic score."""
        worse = 0
        for _ in range(10):
            pattern = random_dna(300, rng)
            text = mutate_dna(pattern, 25, rng)
            no_overlap = WindowedGmxAligner(
                window=32, overlap=0, tile_size=8
            ).align(pattern, text)
            with_overlap = WindowedGmxAligner(
                window=32, overlap=16, tile_size=8
            ).align(pattern, text)
            worse += with_overlap.score > no_overlap.score
        assert worse <= 2
