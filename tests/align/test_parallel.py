"""Parallel-vs-serial equivalence tests for the sharded batch engine.

The engine's contract: for any worker count, ``align_batch`` produces
results, merged stats, and ordering identical to the serial loop — the
only observable difference is the telemetry record.
"""

import os

import pytest

from repro.align import (
    BatchTelemetry,
    FullGmxAligner,
    align_batch,
    align_batch_sharded,
    iter_shards,
)
from repro.baselines import NeedlemanWunschAligner
from repro.workloads import generate_pair_set, save_pairs
from repro.workloads.seqio import iter_pairs

WORKER_COUNTS = (1, 2, 4)


def _dataset(count=12, length=90, seed=11):
    return generate_pair_set("parallel", length, 0.08, count, seed=seed)


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


class TestEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_results_stats_order_identical(self, workers):
        dataset = _dataset()
        serial = align_batch(FullGmxAligner(), dataset)
        parallel = align_batch(
            FullGmxAligner(), dataset, workers=workers, shard_size=5
        )
        assert parallel.results == serial.results
        assert parallel.stats == serial.stats
        assert [r.score for r in parallel.results] == [
            r.score for r in serial.results
        ]
        assert [r.cigar for r in parallel.results] == [
            r.cigar for r in serial.results
        ]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_empty_batch(self, workers):
        batch = align_batch(FullGmxAligner(), [], workers=workers)
        assert batch.pairs == 0
        assert batch.results == []
        assert batch.mean_score == 0.0
        assert batch.telemetry.pairs == 0
        assert batch.telemetry.pairs_per_second == 0.0

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_single_pair_batch(self, workers):
        dataset = _dataset(count=1)
        serial = align_batch(FullGmxAligner(), dataset)
        parallel = align_batch(FullGmxAligner(), dataset, workers=workers)
        assert parallel.results == serial.results
        assert parallel.stats == serial.stats

    def test_nw_baseline_parallel(self):
        dataset = _dataset(count=6, length=60)
        serial = align_batch(NeedlemanWunschAligner(), dataset)
        parallel = align_batch(
            NeedlemanWunschAligner(), dataset, workers=2, shard_size=2
        )
        assert parallel.results == serial.results
        assert parallel.stats == serial.stats

    def test_traceback_off(self):
        dataset = _dataset(count=6)
        serial = align_batch(FullGmxAligner(), dataset, traceback=False)
        parallel = align_batch(
            FullGmxAligner(), dataset, traceback=False, workers=2
        )
        assert parallel.results == serial.results
        assert all(r.alignment is None for r in parallel.results)

    def test_validate_mode_parallel(self):
        dataset = _dataset(count=6)
        batch = align_batch(
            FullGmxAligner(), dataset, validate=True, workers=2
        )
        assert batch.pairs == 6

    def test_generator_input_streams(self):
        dataset = _dataset()
        serial = align_batch(FullGmxAligner(), dataset)
        generator = ((p.pattern, p.text) for p in dataset)
        parallel = align_batch(
            FullGmxAligner(), generator, workers=2, shard_size=4
        )
        assert parallel.results == serial.results
        assert parallel.telemetry.shard_count == 3

    def test_seq_file_stream_input(self, tmp_path):
        dataset = _dataset(count=5)
        path = tmp_path / "pairs.seq"
        save_pairs(dataset, path)
        serial = align_batch(FullGmxAligner(), dataset)
        streamed = align_batch(
            FullGmxAligner(), iter_pairs(path), workers=2, shard_size=2
        )
        assert streamed.results == serial.results

    def test_non_picklable_aligner_falls_back_inline(self):
        class Unpicklable(FullGmxAligner):
            def __init__(self):
                super().__init__()
                self.hook = lambda result: result  # defeats pickling

        dataset = _dataset(count=4)
        serial = align_batch(FullGmxAligner(), dataset)
        batch = align_batch(Unpicklable(), dataset, workers=4)
        assert batch.telemetry.executor == "inline"
        assert batch.results == serial.results
        assert batch.stats == serial.stats
        # The degradation is explained, not silent: the telemetry names
        # the concrete pickling failure.
        reason = batch.telemetry.fallback_reason
        assert reason is not None
        assert "pickl" in reason.lower()

    def test_picklable_parallel_run_has_no_fallback_reason(self):
        batch = align_batch(
            FullGmxAligner(), _dataset(count=4), workers=2, shard_size=2
        )
        assert batch.telemetry.fallback_reason is None


class TestSharding:
    def test_iter_shards_sizes_and_order(self):
        items = [(f"A{i}", f"C{i}") for i in range(10)]
        shards = list(iter_shards(items, 4))
        assert [len(s) for s in shards] == [4, 4, 2]
        assert [pair for shard in shards for pair in shard] == items

    def test_iter_shards_normalises_pair_objects(self):
        dataset = _dataset(count=3)
        (shard,) = iter_shards(dataset, 8)
        assert shard == [(p.pattern, p.text) for p in dataset]

    def test_iter_shards_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(iter_shards([("A", "A")], 0))

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            align_batch_sharded(FullGmxAligner(), [], workers=0)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ValueError):
            align_batch_sharded(
                FullGmxAligner(),
                [("ACGT", "ACGT")],
                workers=2,
                start_method="bogus",
            )

    def test_default_workers_uses_host_cpus(self):
        batch = align_batch_sharded(FullGmxAligner(), _dataset(count=2))
        assert batch.telemetry.workers == (os.cpu_count() or 1)


class TestTelemetry:
    def test_serial_run_records_telemetry(self):
        batch = align_batch(FullGmxAligner(), _dataset(count=3))
        telemetry = batch.telemetry
        assert isinstance(telemetry, BatchTelemetry)
        assert telemetry.executor == "serial"
        assert telemetry.workers == 1
        assert telemetry.shard_count == 1
        assert telemetry.pairs == 3
        assert telemetry.wall_seconds > 0
        assert telemetry.pairs_per_second > 0
        assert 0 < telemetry.worker_utilization <= 1.0

    def test_parallel_run_records_shards(self):
        batch = align_batch(
            FullGmxAligner(), _dataset(count=10), workers=2, shard_size=3
        )
        telemetry = batch.telemetry
        assert telemetry.workers == 2
        assert telemetry.shard_count == 4
        assert [s.index for s in telemetry.shards] == [0, 1, 2, 3]
        assert [s.pairs for s in telemetry.shards] == [3, 3, 3, 1]
        assert telemetry.pairs == 10
        assert telemetry.busy_seconds > 0
        assert telemetry.executor in ("fork", "spawn", "forkserver", "inline")

    def test_empty_batch_telemetry_is_inert(self):
        telemetry = align_batch(FullGmxAligner(), [], workers=2).telemetry
        assert telemetry.pairs == 0
        assert telemetry.pairs_per_second == 0.0
        assert telemetry.busy_seconds == 0.0

    def test_speedup_vs(self):
        fast = BatchTelemetry(workers=4, shard_size=8, wall_seconds=1.0)
        slow = BatchTelemetry(workers=1, shard_size=8, wall_seconds=3.0)
        assert fast.speedup_vs(slow) == pytest.approx(3.0)
        assert slow.speedup_vs(fast) == pytest.approx(1 / 3)

    def test_speedup_vs_is_total_on_zero_wall_time(self):
        instant = BatchTelemetry(workers=1, shard_size=8, wall_seconds=0.0)
        timed = BatchTelemetry(workers=1, shard_size=8, wall_seconds=2.0)
        assert instant.speedup_vs(timed) == float("inf")
        assert instant.speedup_vs(instant) == 1.0
        assert timed.speedup_vs(instant) == 0.0

    def test_pairs_per_second_is_total_on_zero_wall_time(self):
        from repro.align.parallel import ShardTelemetry

        telemetry = BatchTelemetry(workers=1, shard_size=8, wall_seconds=0.0)
        telemetry.shards.append(
            ShardTelemetry(index=0, pairs=3, wall_seconds=0.0, worker="inline")
        )
        assert telemetry.pairs_per_second == float("inf")


@pytest.mark.slow
class TestWallClock:
    """The PR's acceptance batch: 500 pairs, workers=4 vs serial."""

    def test_500_pair_parallel_identical_to_serial(self):
        dataset = generate_pair_set("acceptance", 80, 0.05, 500, seed=2)
        serial = align_batch(FullGmxAligner(), dataset)
        parallel = align_batch(FullGmxAligner(), dataset, workers=4)
        assert parallel.results == serial.results
        assert parallel.stats == serial.stats
        assert parallel.telemetry.pairs == 500

    @pytest.mark.skipif(
        _host_cpus() < 2,
        reason="wall-clock speedup requires >= 2 host CPUs",
    )
    def test_500_pair_speedup_over_1_5x(self):
        dataset = generate_pair_set("acceptance-speed", 100, 0.05, 500, seed=2)
        serial = align_batch(FullGmxAligner(), dataset)
        parallel = align_batch(FullGmxAligner(), dataset, workers=4)
        assert parallel.results == serial.results
        speedup = parallel.telemetry.speedup_vs(serial.telemetry)
        assert speedup > 1.5, (
            f"workers=4 speedup {speedup:.2f}x "
            f"(serial {serial.telemetry.wall_seconds:.2f}s, "
            f"parallel {parallel.telemetry.wall_seconds:.2f}s)"
        )
