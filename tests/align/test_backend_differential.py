"""Cross-backend differential fuzz: every backend is the same machine.

The backend contract is *bit-for-bit equivalence*: for any input, any
mode, and any aligner configuration, a non-pure backend must produce the
same score, the same CIGAR, the same exactness claim, the same text span,
and the same :class:`~repro.align.base.KernelStats` as the pure reference
loop — the backends differ only in how fast they get there.

The sweep is seeded (replayable) and mixes random pairs with adversarial
shapes: tile-boundary lengths, band-edge indel runs, tie-break-heavy
repeats, and single-character extremes.  A final test drives the
resilience engine's degradation chain to show the equivalence holds even
when a persistent fault forces the BPM fallback path.
"""

import random

import pytest

from repro.align import (
    AlignmentMode,
    AutoAligner,
    BandExceededError,
    BandedGmxAligner,
    FullGmxAligner,
    WindowedGmxAligner,
    align_batch,
)
from repro.align.backends import DEFAULT_BACKEND, backend_names

TILE = 8
SEED = 0xD1FF
ALPHABET = "ACGT"

#: Backends under test: everything registered and importable except the
#: reference itself.
CHALLENGERS = tuple(
    name for name in backend_names() if name != DEFAULT_BACKEND
)

#: Hand-picked adversarial pairs (pattern, text).
ADVERSARIAL = (
    # Tile-boundary lengths: exactly T, T±1, 2T, 4T±1.
    ("A" * TILE, "A" * TILE),
    ("A" * (TILE - 1), "A" * (TILE + 1)),
    ("ACGTACGTA" * 3, "ACGTACGTA" * 3 + "T"),
    ("C" * (4 * TILE - 1), "C" * (4 * TILE + 1)),
    # Band-edge shapes: long indel runs that ride the band boundary.
    ("ACGT" * 8, "ACGT" * 8 + "TTTTTTTT"),
    ("GGGGGGGG" + "ACGT" * 6, "ACGT" * 6),
    # Tie-break-heavy repeats: many co-optimal paths stress traceback
    # determinism (insert-vs-delete-vs-diagonal preference).
    ("ATATATATATATATAT", "TATATATATATATATA"),
    ("AAAAAAAAAAAAAAAA", "AAAAAAAATAAAAAAA"),
    ("ACACACAC", "CACACACA"),
    # Extremes: single characters, full mismatch.
    ("A", "T"),
    ("A", "T" * (2 * TILE)),
    ("ACGT" * TILE, "TGCA" * TILE),
)


def random_pairs(count, max_length=6 * TILE, seed=SEED):
    """Seeded random (pattern, text) pairs across the length/error range."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        n = rng.randint(1, max_length)
        pattern = "".join(rng.choice(ALPHABET) for _ in range(n))
        text = list(pattern)
        for _ in range(rng.randint(0, max(1, n // 3))):
            op = rng.choice("smid")  # skip/mutate/insert/delete
            pos = rng.randrange(len(text) + 1)
            if op == "m" and text:
                text[pos % len(text)] = rng.choice(ALPHABET)
            elif op == "i":
                text.insert(pos, rng.choice(ALPHABET))
            elif op == "d" and len(text) > 1:
                del text[pos % len(text)]
        pairs.append((pattern, "".join(text)))
    return pairs


def outcome(aligner, pattern, text):
    """Full observable signature of one alignment (or the raised error)."""
    try:
        result = aligner.align(pattern, text)
    except BandExceededError as exc:
        return ("BandExceededError", str(exc))
    return (
        result.score,
        result.cigar,
        result.exact,
        result.text_start,
        result.text_end,
        result.stats,
    )


def assert_identical(make_aligner, pairs):
    """Every challenger matches pure on every pair, field for field."""
    reference = make_aligner(DEFAULT_BACKEND)
    for backend in CHALLENGERS:
        challenger = make_aligner(backend)
        for pattern, text in pairs:
            expected = outcome(reference, pattern, text)
            got = outcome(challenger, pattern, text)
            assert got == expected, (
                f"backend {backend!r} diverged from {DEFAULT_BACKEND!r}\n"
                f"  aligner: {type(reference).__name__}\n"
                f"  pattern: {pattern!r}\n"
                f"  text   : {text!r}\n"
                f"  pure   : {expected[:2]}\n"
                f"  {backend:<7}: {got[:2]}"
            )


pytestmark = pytest.mark.skipif(
    not CHALLENGERS, reason="only the pure backend is available"
)


class TestFullGmx:
    MODES = (AlignmentMode.GLOBAL, AlignmentMode.PREFIX, AlignmentMode.INFIX)

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("fused", (False, True), ids=("plain", "fused"))
    def test_random_sweep(self, mode, fused):
        salt = 100 * self.MODES.index(mode) + int(fused)
        assert_identical(
            lambda b: FullGmxAligner(
                tile_size=TILE, mode=mode, fused=fused, backend=b
            ),
            random_pairs(40, seed=SEED + salt),
        )

    def test_adversarial(self):
        assert_identical(
            lambda b: FullGmxAligner(tile_size=TILE, backend=b), ADVERSARIAL
        )

    def test_distance_only(self):
        def check(backend):
            return FullGmxAligner(tile_size=TILE, backend=backend)

        reference = check(DEFAULT_BACKEND)
        for backend in CHALLENGERS:
            challenger = check(backend)
            for pattern, text in random_pairs(30, seed=SEED + 77):
                expected = reference.align(pattern, text, traceback=False)
                got = challenger.align(pattern, text, traceback=False)
                assert (got.score, got.stats) == (
                    expected.score,
                    expected.stats,
                ), f"{backend} diverged on {pattern!r}/{text!r}"
                assert got.alignment is None

    def test_odd_tile_sizes(self):
        for tile in (2, 3, 5, 13):
            assert_identical(
                lambda b, t=tile: FullGmxAligner(tile_size=t, backend=b),
                random_pairs(15, max_length=4 * tile, seed=SEED + tile),
            )


class TestBandedGmx:
    def test_auto_widen_sweep(self):
        assert_identical(
            lambda b: BandedGmxAligner(tile_size=TILE, backend=b),
            random_pairs(40, seed=SEED + 1) + list(ADVERSARIAL),
        )

    def test_fixed_band_including_matching_failures(self):
        # A tight fixed band must fail (BandExceededError) on exactly the
        # same pairs under every backend — outcome() folds the error into
        # the compared signature.
        assert_identical(
            lambda b: BandedGmxAligner(
                band=4, auto_widen=False, tile_size=TILE, backend=b
            ),
            random_pairs(40, seed=SEED + 2) + list(ADVERSARIAL),
        )

    def test_band_edge_indel_runs(self):
        # Deletions/insertions sized to land on the band boundary.
        cases = [
            ("ACGT" * 6, "ACGT" * 6 + "G" * k) for k in range(1, 2 * TILE)
        ]
        assert_identical(
            lambda b: BandedGmxAligner(tile_size=TILE, backend=b), cases
        )


class TestDrivers:
    def test_windowed(self):
        assert_identical(
            lambda b: WindowedGmxAligner(tile_size=TILE, backend=b),
            random_pairs(20, max_length=12 * TILE, seed=SEED + 3),
        )

    def test_auto(self):
        assert_identical(
            lambda b: AutoAligner(tile_size=TILE, backend=b),
            random_pairs(20, seed=SEED + 4) + list(ADVERSARIAL),
        )

    def test_batch_backend_kwarg(self):
        # align_batch(backend=...) reconfigures the aligner for the whole
        # batch; the merged results must match a pure run pair for pair.
        pairs = random_pairs(12, seed=SEED + 5)
        reference = align_batch(FullGmxAligner(tile_size=TILE), pairs)
        for backend in CHALLENGERS:
            batch = align_batch(
                FullGmxAligner(tile_size=TILE), pairs, backend=backend
            )
            assert batch.telemetry.backend == backend
            assert [r.score for r in batch.results] == [
                r.score for r in reference.results
            ]
            assert [r.cigar for r in batch.results] == [
                r.cigar for r in reference.results
            ]
            assert batch.stats == reference.stats


class TestResilienceFallback:
    def test_persistent_fault_degrades_identically(self):
        # A persistent worker crash exhausts retries; the engine bisects
        # to the poison pair and answers it with the BPM fallback.  The
        # recovered batch must be identical whichever backend the primary
        # aligner was configured with.
        from repro.resilience import FaultPlan, FaultSpec, align_batch_resilient
        from repro.workloads import generate_pair_set

        pairs = list(
            generate_pair_set(
                "backend-chaos", length=48, error_rate=0.1, count=6, seed=21
            )
        )
        plan = FaultPlan(
            seed=0,
            pair_count=6,
            faults=(
                FaultSpec(
                    fault_id=0,
                    layer="worker",
                    kind="crash",
                    pair_index=2,
                    seed=9,
                    persistent=True,
                ),
            ),
        )

        def run(backend):
            return align_batch_resilient(
                FullGmxAligner(tile_size=TILE, backend=backend),
                pairs,
                shard_size=3,
                fault_plan=plan,
                max_retries=1,
            )

        reference = run(DEFAULT_BACKEND)
        assert reference.telemetry.resilience.fallbacks >= 1
        for backend in CHALLENGERS:
            batch = run(backend)
            counters = batch.telemetry.resilience
            assert counters.fallbacks >= 1
            assert counters.fallbacks == (
                reference.telemetry.resilience.fallbacks
            )
            assert batch.quarantined == reference.quarantined == []
            assert [r.score for r in batch.results] == [
                r.score for r in reference.results
            ]
            assert [r.cigar for r in batch.results] == [
                r.cigar for r in reference.results
            ]
            assert batch.telemetry.backend == backend

    def test_hardware_fault_hook_sees_real_instructions(self):
        # A persistent hardware bitflip is injected through the ISA fault
        # hook; a non-observing backend must degrade to pure so the hook
        # actually fires (detected by cross-check) instead of being
        # silently skipped.
        from repro.resilience import FaultPlan, FaultSpec, align_batch_resilient
        from repro.workloads import generate_pair_set

        pairs = list(
            generate_pair_set(
                "backend-hw", length=48, error_rate=0.1, count=4, seed=22
            )
        )
        plan = FaultPlan(
            seed=0,
            pair_count=4,
            faults=(
                FaultSpec(
                    fault_id=0,
                    layer="hardware",
                    kind="bitflip",
                    pair_index=1,
                    seed=17,
                ),
            ),
        )

        def run(backend):
            return align_batch_resilient(
                FullGmxAligner(tile_size=TILE, backend=backend),
                pairs,
                shard_size=2,
                fault_plan=plan,
                max_retries=2,
                cross_check=True,
            )

        reference = run(DEFAULT_BACKEND)
        for backend in CHALLENGERS:
            batch = run(backend)
            assert (
                batch.telemetry.resilience.faults_injected
                == reference.telemetry.resilience.faults_injected
                >= 1
            )
            assert [r.score for r in batch.results] == [
                r.score for r in reference.results
            ]
