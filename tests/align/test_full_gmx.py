"""Tests for Full(GMX) (repro.align.full_gmx)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.align import FullGmxAligner, align_pair

dna = st.text(alphabet="ACGT", min_size=1, max_size=70)


class TestCorrectness:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_optimal_distance_and_valid_alignment(self, pattern, text):
        """Full(GMX) is exact for any input, any divergence."""
        result = FullGmxAligner(tile_size=8).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        assert result.exact
        result.alignment.validate()

    @pytest.mark.parametrize("tile_size", [2, 3, 8, 16, 32, 64])
    def test_tile_size_invariance(self, tile_size, rng):
        """The tile size is a performance knob, never a correctness one."""
        pattern = random_dna(90, rng)
        text = mutate_dna(pattern, 12, rng)
        result = FullGmxAligner(tile_size=tile_size).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    def test_paper_example(self):
        result = align_pair("GCAT", "GATT", tile_size=2)
        assert result.score == 2
        result.alignment.validate()

    def test_lengths_not_multiple_of_tile(self, rng):
        pattern = random_dna(33, rng)
        text = mutate_dna(pattern, 3, rng)
        result = FullGmxAligner(tile_size=32).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)

    def test_single_character_sequences(self):
        assert FullGmxAligner().align("A", "A").score == 0
        assert FullGmxAligner().align("A", "C").score == 1

    def test_very_asymmetric_lengths(self, rng):
        pattern = random_dna(3, rng)
        text = random_dna(100, rng)
        result = FullGmxAligner(tile_size=8).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()


class TestDistanceOnlyMode:
    def test_same_score_without_traceback(self, rng):
        pattern = random_dna(120, rng)
        text = mutate_dna(pattern, 15, rng)
        aligner = FullGmxAligner(tile_size=16)
        with_tb = aligner.align(pattern, text)
        without = aligner.align(pattern, text, traceback=False)
        assert with_tb.score == without.score
        assert without.alignment is None

    def test_distance_mode_uses_linear_memory(self, rng):
        """Distance-only keeps one tile column: the paper's streaming mode."""
        pattern = random_dna(256, rng)
        text = mutate_dna(pattern, 20, rng)
        aligner = FullGmxAligner(tile_size=16)
        with_tb = aligner.align(pattern, text)
        without = aligner.align(pattern, text, traceback=False)
        assert without.stats.dp_bytes_peak < with_tb.stats.dp_bytes_peak / 4


class TestInstrumentation:
    def test_tile_count(self, rng):
        pattern = random_dna(96, rng)
        text = random_dna(64, rng)
        result = FullGmxAligner(tile_size=32).align(pattern, text, traceback=False)
        assert result.stats.tiles == 3 * 2
        assert result.stats.dp_cells == 96 * 64

    def test_gmx_instruction_count_quadratic_reduction(self, rng):
        """One gmx.v + one gmx.h per tile — the T² instruction reduction."""
        pattern = random_dna(128, rng)
        text = random_dna(128, rng)
        result = FullGmxAligner(tile_size=32).align(pattern, text, traceback=False)
        assert result.stats.instructions["gmx"] == 2 * 16

    def test_edge_only_memory(self, rng):
        """Stored DP state is 2 registers per tile, not T² cells."""
        pattern = random_dna(128, rng)
        text = random_dna(128, rng)
        result = FullGmxAligner(tile_size=32).align(pattern, text)
        # (128/32)² tiles × two 8-byte edge registers each.
        assert result.stats.dp_bytes_peak == 4 * 4 * 2 * 8


class TestValidation:
    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            FullGmxAligner().align("", "ACGT")
        with pytest.raises(ValueError):
            FullGmxAligner().align("ACGT", "")

    def test_tiny_tile_size_rejected(self):
        with pytest.raises(ValueError):
            FullGmxAligner(tile_size=1)
