"""Tests for Banded(GMX) (repro.align.banded_gmx)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.align import BandedGmxAligner
from repro.align.banded_gmx import BandExceededError

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestAutoWiden:
    @given(dna, dna)
    @settings(max_examples=80, deadline=None)
    def test_exact_with_auto_widening(self, pattern, text):
        """Doubling until self-certification makes Banded(GMX) exact."""
        result = BandedGmxAligner(tile_size=8).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        assert result.exact
        result.alignment.validate()

    def test_certification_criterion(self, rng):
        """A result is certified exact only when score ≤ band (Ukkonen)."""
        pattern = random_dna(200, rng)
        text = mutate_dna(pattern, 10, rng)
        result = BandedGmxAligner(tile_size=8).align(pattern, text)
        assert result.exact
        assert result.score <= max(200, result.score)


class TestFixedBand:
    def test_wide_band_is_exact(self, rng):
        pattern = random_dna(150, rng)
        text = mutate_dna(pattern, 8, rng)
        distance = scalar_edit_distance(pattern, text)
        result = BandedGmxAligner(
            band=distance + 32, auto_widen=False, tile_size=8
        ).align(pattern, text)
        assert result.score == distance
        assert result.exact

    def test_narrow_band_flagged_inexact(self, rng):
        """When the band can't certify, the result must not claim exactness."""
        pattern = random_dna(128, rng)
        text = pattern[::-1]  # high divergence
        distance = scalar_edit_distance(pattern, text)
        result = BandedGmxAligner(
            band=8, auto_widen=False, tile_size=8
        ).align(pattern, text, traceback=False)
        assert result.score >= distance
        assert not result.exact

    def test_narrow_band_alignment_still_valid(self, rng):
        """Even an uncertified banded alignment must replay correctly."""
        pattern = random_dna(96, rng)
        text = mutate_dna(pattern, 30, rng)
        try:
            result = BandedGmxAligner(
                band=16, auto_widen=False, tile_size=8
            ).align(pattern, text)
        except BandExceededError:
            return  # acceptable: the walk left the band and said so
        result.alignment.validate()
        assert result.score >= scalar_edit_distance(pattern, text)

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            BandedGmxAligner(band=0)


class TestCostAdvantage:
    def test_band_computes_fewer_tiles_than_full(self, rng):
        """The point of banding: m·B/T² tiles, not n·m/T² (§4.1)."""
        from repro.align import FullGmxAligner

        pattern = random_dna(512, rng)
        text = mutate_dna(pattern, 10, rng)
        banded = BandedGmxAligner(tile_size=16).align(
            pattern, text, traceback=False
        )
        full = FullGmxAligner(tile_size=16).align(pattern, text, traceback=False)
        assert banded.score == full.score
        assert banded.stats.tiles < full.stats.tiles / 2

    def test_length_difference_always_covered(self, rng):
        """Band is widened to |n−m| so the corner is always reachable."""
        pattern = random_dna(40, rng)
        text = random_dna(200, rng)
        result = BandedGmxAligner(tile_size=8).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
