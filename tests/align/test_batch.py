"""Tests for the batch alignment API (repro.align.batch)."""

import pytest

from repro.align import BandedGmxAligner, BatchResult, FullGmxAligner, align_batch
from repro.align.base import AlignmentResult, KernelStats
from repro.baselines import NeedlemanWunschAligner
from repro.sim.soc import GEM5_INORDER, RTL_INORDER
from repro.workloads import generate_pair_set, short_dataset


class TestBatchBasics:
    def test_accepts_pair_set(self):
        dataset = short_dataset(100, count=4)
        batch = align_batch(FullGmxAligner(), dataset)
        assert batch.pairs == 4
        assert len(batch.scores) == 4
        assert batch.all_exact

    def test_accepts_tuples(self):
        batch = align_batch(
            NeedlemanWunschAligner(), [("ACGT", "ACGA"), ("AAAA", "AAAA")]
        )
        assert batch.scores == [1, 0]
        assert batch.mean_score == 0.5

    def test_rejects_garbage_items(self):
        with pytest.raises(TypeError):
            align_batch(FullGmxAligner(), [42])

    def test_validate_mode(self):
        dataset = generate_pair_set("batch", 150, 0.1, 3, seed=5)
        batch = align_batch(FullGmxAligner(), dataset, validate=True)
        assert batch.pairs == 3

    def test_distance_only(self):
        batch = align_batch(
            FullGmxAligner(), [("ACGT", "ACGA")], traceback=False
        )
        assert batch.results[0].alignment is None

    def test_empty_batch(self):
        batch = align_batch(FullGmxAligner(), [])
        assert batch.pairs == 0
        assert batch.mean_score == 0.0
        assert batch.modelled_throughput(RTL_INORDER) == 0.0


class TestAggregation:
    def test_stats_accumulate(self):
        dataset = short_dataset(100, count=3)
        single = align_batch(FullGmxAligner(), dataset.pairs[:1])
        full = align_batch(FullGmxAligner(), dataset)
        assert (
            full.stats.total_instructions
            > 2 * single.stats.total_instructions
        )
        assert full.stats.dp_cells == sum(
            len(p.pattern) * len(p.text) for p in dataset
        )

    def test_modelled_throughput_orders_systems(self):
        """The 2 GHz gem5 core must beat the 1 GHz edge SoC."""
        dataset = short_dataset(150, count=4)
        batch = align_batch(BandedGmxAligner(), dataset)
        assert batch.modelled_throughput(GEM5_INORDER) > batch.modelled_throughput(
            RTL_INORDER
        )

    def test_energy_positive(self):
        batch = align_batch(FullGmxAligner(), short_dataset(100, count=2))
        assert batch.modelled_energy_nj() > 0


class TestZeroPairConsistency:
    """Regression: every zero-pair/zero-work edge reports 0.0, uniformly.

    mean_score returned 0.0 for an empty batch while the modelled_*
    family still ran the timing models (dividing through modelled
    seconds); they now all short-circuit the same way.
    """

    def test_empty_batch_all_metrics_zero(self):
        batch = align_batch(FullGmxAligner(), [])
        assert batch.mean_score == 0.0
        assert batch.modelled_seconds(RTL_INORDER) == 0.0
        assert batch.modelled_seconds(GEM5_INORDER) == 0.0
        assert batch.modelled_throughput(RTL_INORDER) == 0.0
        assert batch.modelled_energy_nj() == 0.0

    def test_empty_batch_metrics_agree_across_workers(self):
        for workers in (1, 2, 4):
            batch = align_batch(FullGmxAligner(), [], workers=workers)
            assert batch.mean_score == 0.0
            assert batch.modelled_throughput(RTL_INORDER) == 0.0

    def test_zero_work_results_do_not_divide_by_zero(self):
        """Pairs present but with empty stats: modelled runtime is 0.0 and
        throughput must report 0.0 instead of raising ZeroDivisionError."""
        batch = BatchResult(
            results=[
                AlignmentResult(score=0, alignment=None, stats=KernelStats())
            ]
        )
        assert batch.pairs == 1
        assert batch.modelled_seconds(RTL_INORDER) == 0.0
        assert batch.modelled_throughput(RTL_INORDER) == 0.0

    def test_telemetry_always_recorded(self):
        batch = align_batch(FullGmxAligner(), [("ACGT", "ACGA")])
        assert batch.telemetry is not None
        assert batch.telemetry.pairs == 1
        assert batch.telemetry.wall_seconds > 0
