"""Tests for PREFIX/INFIX alignment modes (GMX vs the NW reference)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.align import AlignmentMode, FullGmxAligner
from repro.baselines import NeedlemanWunschAligner

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)
MODES = (AlignmentMode.GLOBAL, AlignmentMode.PREFIX, AlignmentMode.INFIX)


class TestModesAgainstReference:
    @pytest.mark.parametrize("mode", MODES)
    @given(pattern=dna, text=dna)
    @settings(max_examples=60, deadline=None)
    def test_gmx_matches_nw_in_every_mode(self, mode, pattern, text):
        reference = NeedlemanWunschAligner(mode=mode).align(pattern, text)
        gmx = FullGmxAligner(tile_size=8, mode=mode).align(pattern, text)
        assert gmx.score == reference.score
        reference.alignment.validate()
        gmx.alignment.validate()

    @pytest.mark.parametrize("mode", MODES)
    def test_distance_only_agrees(self, mode, rng):
        pattern = random_dna(120, rng)
        text = random_dna(200, rng)
        aligner = FullGmxAligner(tile_size=16, mode=mode)
        assert (
            aligner.align(pattern, text, traceback=False).score
            == aligner.align(pattern, text).score
        )


class TestModeSemantics:
    def test_mode_ordering(self, rng):
        """Freer boundaries can only lower the score: INFIX ≤ PREFIX ≤ GLOBAL."""
        for _ in range(20):
            pattern = random_dna(30, rng)
            text = random_dna(60, rng)
            scores = {
                mode: FullGmxAligner(tile_size=8, mode=mode)
                .align(pattern, text, traceback=False)
                .score
                for mode in MODES
            }
            assert (
                scores[AlignmentMode.INFIX]
                <= scores[AlignmentMode.PREFIX]
                <= scores[AlignmentMode.GLOBAL]
            )

    def test_infix_finds_embedded_pattern(self, rng):
        """A clean embedding must score 0 and report the right span."""
        pattern = random_dna(50, rng)
        text = random_dna(40, rng) + pattern + random_dna(40, rng)
        result = FullGmxAligner(tile_size=8, mode=AlignmentMode.INFIX).align(
            pattern, text
        )
        assert result.score == 0
        assert text[result.text_start : result.text_end] == pattern

    def test_infix_with_errors(self, rng):
        pattern = random_dna(60, rng)
        noisy = mutate_dna(pattern, 5, rng)
        text = random_dna(30, rng) + noisy + random_dna(30, rng)
        result = FullGmxAligner(tile_size=8, mode=AlignmentMode.INFIX).align(
            pattern, text
        )
        assert result.score <= 5
        result.alignment.validate()

    def test_prefix_ignores_text_suffix(self, rng):
        """PREFIX against pattern+junk must equal GLOBAL against pattern."""
        pattern = random_dna(40, rng)
        junk = random_dna(100, rng)
        result = FullGmxAligner(tile_size=8, mode=AlignmentMode.PREFIX).align(
            pattern, pattern + junk
        )
        assert result.score == 0
        assert result.text_start == 0
        assert result.text_end == len(pattern)

    def test_prefix_still_pays_for_text_prefix(self, rng):
        """Unlike INFIX, PREFIX must consume the text from position 0."""
        pattern = random_dna(30, rng)
        text = "T" * 10 + pattern  # leading junk
        prefix_score = FullGmxAligner(
            tile_size=8, mode=AlignmentMode.PREFIX
        ).align(pattern, text, traceback=False).score
        infix_score = FullGmxAligner(
            tile_size=8, mode=AlignmentMode.INFIX
        ).align(pattern, text, traceback=False).score
        assert infix_score <= prefix_score
        assert prefix_score > 0 or pattern.startswith("T" * 10)

    def test_global_mode_reports_full_span(self, rng):
        pattern = random_dna(20, rng)
        text = random_dna(25, rng)
        result = FullGmxAligner(tile_size=8).align(pattern, text)
        assert result.text_start == 0
        assert result.text_end == len(text)

    def test_empty_prefix_best(self):
        """Degenerate: pattern of A's vs text of T's — INFIX deletes all."""
        result = FullGmxAligner(tile_size=4, mode=AlignmentMode.INFIX).align(
            "AAAA", "TTTT"
        )
        assert result.score == 4
        result.alignment.validate()


class TestModeCrossValidation:
    def test_infix_score_equals_min_over_windows(self, rng):
        """INFIX score == min over all (start, end) global alignments.

        Brute force over substrings on tiny inputs — the definition.
        """
        for _ in range(10):
            pattern = random_dna(8, rng)
            text = random_dna(14, rng)
            brute = len(pattern)  # empty substring: delete everything
            for start in range(len(text) + 1):
                for end in range(start + 1, len(text) + 1):
                    brute = min(
                        brute,
                        scalar_edit_distance(pattern, text[start:end]),
                    )
            result = FullGmxAligner(tile_size=4, mode=AlignmentMode.INFIX).align(
                pattern, text, traceback=False
            )
            assert result.score == brute
