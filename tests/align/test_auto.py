"""Tests for the automatic aligner façade (repro.align.auto)."""

import pytest

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.align.auto import AutoAligner


class TestSelectionPolicy:
    def test_small_pairs_use_banded_and_stay_exact(self, rng):
        aligner = AutoAligner()
        pattern = random_dna(300, rng)
        text = mutate_dna(pattern, 20, rng)
        result = aligner.align(pattern, text)
        assert aligner.last_choice == "Banded(GMX)"
        assert result.exact
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    def test_huge_pairs_fall_back_to_windowed(self, rng):
        aligner = AutoAligner(memory_budget_bytes=2048)
        pattern = random_dna(2_000, rng)
        text = mutate_dna(pattern, 40, rng)
        result = aligner.align(pattern, text)
        assert aligner.last_choice == "Windowed(GMX)"
        assert not result.exact
        result.alignment.validate()

    def test_require_exact_raises_over_budget(self, rng):
        aligner = AutoAligner(memory_budget_bytes=2048, require_exact=True)
        pattern = random_dna(2_000, rng)
        with pytest.raises(MemoryError):
            aligner.align(pattern, pattern)

    def test_budget_threshold_is_the_edge_matrix(self):
        aligner = AutoAligner(memory_budget_bytes=64 * 1024 * 1024)
        # 1 Mbp × 1 Mbp edges ≈ 15 GB: must exceed any sane budget.
        assert aligner._edge_matrix_bytes(10**6, 10**6) > 10 * 2**30
        # 10 kbp edges ≈ 1.5 MB: fits.
        assert aligner._edge_matrix_bytes(10**4, 10**4) < 2 * 2**20

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoAligner(memory_budget_bytes=10)
        with pytest.raises(ValueError):
            AutoAligner().align("", "A")

    def test_divergent_pairs_still_exact_via_widening(self, rng):
        """High divergence widens the band up to Full — still exact."""
        aligner = AutoAligner()
        pattern = random_dna(150, rng)
        text = random_dna(150, rng)
        result = aligner.align(pattern, text)
        assert result.exact
        assert result.score == scalar_edit_distance(pattern, text)
