"""Unit tests for the kernel backend registry (repro.align.backends).

Covers the registry surface (names, specs, availability probes), the
selection order (explicit instance > name > ``$REPRO_BACKEND`` > default),
``with_backend`` cloning semantics on every backend-capable aligner, the
documented ``AlignerError`` on baselines, and the observer-degradation
rule: a non-observing backend silently yields to the pure engine whenever
an ISA trace or fault hook is armed.
"""

import pytest

from repro.align import (
    AlignerError,
    AutoAligner,
    BandedGmxAligner,
    FullGmxAligner,
    WindowedGmxAligner,
)
from repro.align.backends import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    BackendError,
    BitparTileBackend,
    KernelBackend,
    PureTileBackend,
    backend_names,
    backend_specs,
    effective_backend,
    get_backend,
    is_available,
    register_backend,
)
from repro.baselines import BpmAligner, NeedlemanWunschAligner
from repro.core.isa import GmxIsa, fault_injection

GMX_ALIGNERS = (
    FullGmxAligner,
    BandedGmxAligner,
    WindowedGmxAligner,
    AutoAligner,
)


@pytest.fixture(autouse=True)
def _no_ambient_backend(monkeypatch):
    """These tests probe the selection machinery itself; an ambient
    ``$REPRO_BACKEND`` (e.g. the CI backend matrix) must not leak in."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)


class TestRegistry:
    def test_default_backend_is_registered_and_first(self):
        names = backend_names()
        assert names[0] == DEFAULT_BACKEND == "pure"
        assert "bitpar" in names

    def test_specs_align_with_names(self):
        specs = backend_specs()
        assert tuple(s.name for s in specs) == backend_names(
            available_only=False
        )
        for spec in specs:
            assert spec.description  # every backend documents itself

    def test_available_only_filter_is_a_subset(self):
        available = set(backend_names())
        registered = set(backend_names(available_only=False))
        assert available <= registered
        assert all(is_available(name) for name in available)

    def test_is_available_on_unknown_name(self):
        assert not is_available("definitely-not-a-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend("pure", PureTileBackend)

    def test_singletons_are_cached(self):
        assert get_backend("bitpar") is get_backend("bitpar")


class TestSelection:
    def test_none_resolves_to_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert get_backend(None).name == DEFAULT_BACKEND

    def test_env_variable_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bitpar")
        assert get_backend(None).name == "bitpar"
        # An explicit name still wins over the environment.
        assert get_backend("pure").name == "pure"

    def test_env_variable_with_unknown_name_errors(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "warp-drive")
        with pytest.raises(BackendError):
            get_backend(None)

    def test_unknown_name_errors_with_roster(self):
        with pytest.raises(BackendError, match="pure"):
            get_backend("warp-drive")

    def test_instance_passes_through(self):
        backend = BitparTileBackend()
        assert get_backend(backend) is backend

    def test_aligner_ctor_accepts_all_selector_forms(self):
        for selector in (None, "bitpar", BitparTileBackend()):
            aligner = FullGmxAligner(backend=selector)
            assert isinstance(aligner.backend, KernelBackend)


class TestWithBackend:
    @pytest.mark.parametrize("cls", GMX_ALIGNERS, ids=lambda c: c.__name__)
    def test_clone_preserves_type_and_sets_backend(self, cls):
        original = cls(tile_size=8)
        clone = original.with_backend("bitpar")
        assert type(clone) is type(original)
        assert clone is not original
        assert clone.backend.name == "bitpar"
        assert original.backend.name == DEFAULT_BACKEND  # untouched

    @pytest.mark.parametrize("cls", GMX_ALIGNERS, ids=lambda c: c.__name__)
    def test_supports_backend_flag(self, cls):
        assert cls(tile_size=8).supports_backend

    def test_clone_preserves_configuration(self):
        original = FullGmxAligner(tile_size=16, fused=True)
        clone = original.with_backend("bitpar")
        assert clone.tile_size == 16
        assert clone.fused is True
        result = clone.align("ACGTACGTAC", "ACGTACGGAC")
        assert result.score == original.align("ACGTACGTAC", "ACGTACGGAC").score

    @pytest.mark.parametrize(
        "baseline", (BpmAligner, NeedlemanWunschAligner), ids=lambda c: c.__name__
    )
    def test_baselines_reject_backends(self, baseline):
        aligner = baseline()
        assert not aligner.supports_backend
        with pytest.raises(AlignerError, match="does not support"):
            aligner.with_backend("bitpar")

    def test_windowed_backend_property_never_raises(self):
        # batch telemetry probes `aligner.backend` with getattr(..., None);
        # a generic windowed driver over a backend-less inner aligner must
        # answer None, not raise.
        from repro.align import WindowedAligner

        wrapped = WindowedAligner(BpmAligner(), window=32, overlap=8)
        assert wrapped.backend is None
        assert not wrapped.supports_backend
        with pytest.raises(AlignerError):
            wrapped.with_backend("bitpar")


class TestObserverDegradation:
    def test_pure_always_sticks(self):
        isa = GmxIsa(tile_size=8)
        pure = get_backend("pure")
        assert effective_backend(pure, isa) is pure

    def test_bitpar_sticks_on_plain_isa(self):
        isa = GmxIsa(tile_size=8)
        bitpar = get_backend("bitpar")
        assert effective_backend(bitpar, isa) is bitpar

    def test_trace_forces_pure(self):
        isa = GmxIsa(tile_size=8)
        isa.trace = []
        assert effective_backend(get_backend("bitpar"), isa).name == "pure"

    def test_fault_hook_forces_pure(self):
        class _Hook:
            def on_tile_output(self, op, value, tile_size):
                return value

            def on_csr_write(self, csr, value):
                return value

        isa = GmxIsa(tile_size=8)
        with fault_injection(_Hook()):
            assert effective_backend(get_backend("bitpar"), isa).name == "pure"
        assert effective_backend(get_backend("bitpar"), isa).name == "bitpar"

    def test_trace_sink_aligner_still_exact_under_bitpar(self):
        # End-to-end: a tracing aligner configured with bitpar silently
        # runs pure, so the verifier-visible event stream stays complete
        # and the answer is unchanged.
        sink = []
        aligner = FullGmxAligner(tile_size=8, trace_sink=sink, backend="bitpar")
        reference = FullGmxAligner(tile_size=8).align("ACGTACGT", "ACGAACGT")
        result = aligner.align("ACGTACGT", "ACGAACGT")
        assert result.score == reference.score
        assert sink  # the retired stream was recorded despite the backend
