"""Backend objects and backend-configured aligners survive pickling.

:mod:`repro.align.parallel` ships whole aligners to pool workers, so a
backend choice made in the parent must ride along: the backend singleton
itself pickles, every (aligner x backend) combination round-trips with
the choice intact, and a real worker pool run under a non-pure backend
produces results byte-identical to the serial pure reference.
"""

import pickle

import pytest

from repro.align import (
    AutoAligner,
    BandedGmxAligner,
    FullGmxAligner,
    WindowedGmxAligner,
    align_batch,
    align_batch_sharded,
)
from repro.align.backends import backend_names, get_backend
from repro.workloads import generate_pair_set

BACKENDS = tuple(backend_names())
GMX_ALIGNERS = (
    FullGmxAligner,
    BandedGmxAligner,
    WindowedGmxAligner,
    AutoAligner,
)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_backend_singleton_round_trips(backend_name):
    backend = get_backend(backend_name)
    restored = pickle.loads(pickle.dumps(backend))
    assert type(restored) is type(backend)
    assert restored.name == backend_name


@pytest.mark.parametrize("cls", GMX_ALIGNERS, ids=lambda c: c.__name__)
@pytest.mark.parametrize("backend_name", BACKENDS)
def test_configured_aligner_round_trips(cls, backend_name):
    aligner = cls(tile_size=8).with_backend(backend_name)
    restored = pickle.loads(pickle.dumps(aligner))
    assert type(restored) is cls
    assert restored.backend.name == backend_name
    pattern, text = "ACGTACGTACGT", "ACGTACCTACGT"
    original = aligner.align(pattern, text)
    replayed = restored.align(pattern, text)
    assert (replayed.score, replayed.cigar, replayed.stats) == (
        original.score,
        original.cigar,
        original.stats,
    )


@pytest.mark.skipif(
    "bitpar" not in BACKENDS, reason="bitpar backend unavailable"
)
def test_pool_run_with_bitpar_matches_serial_pure():
    pairs = generate_pair_set("pickle-pool", 90, 0.08, 8, seed=19)
    reference = align_batch(FullGmxAligner(), list(pairs))
    batch = align_batch_sharded(
        FullGmxAligner(backend="bitpar"), list(pairs), workers=2, shard_size=3
    )
    # The run must have used a real pool — a silent inline fallback would
    # mean the backend broke picklability.
    assert batch.telemetry.executor != "inline"
    assert batch.telemetry.fallback_reason is None
    assert batch.telemetry.backend == "bitpar"
    assert [r.score for r in batch.results] == [
        r.score for r in reference.results
    ]
    assert [r.cigar for r in batch.results] == [
        r.cigar for r in reference.results
    ]
    assert batch.stats == reference.stats


def test_repro004_lint_covers_backend_objects():
    # The repo invariant lint's picklability probe walks backends and
    # backend-configured aligners; a clean run is the standing proof.
    from repro.analysis.repolint import check_aligner_picklability

    assert check_aligner_picklability() == []
