"""Tests for the mesh NoC model (repro.sim.noc)."""

import pytest

from repro.sim.noc import MESH_4X4, MeshNoc


class TestTopology:
    def test_16_nodes(self):
        assert MESH_4X4.nodes == 16

    def test_corner_to_corner_hops(self):
        assert MESH_4X4.hops(0, 15) == 6  # (0,0) → (3,3)

    def test_hops_symmetric(self):
        for a in range(16):
            for b in range(16):
                assert MESH_4X4.hops(a, b) == MESH_4X4.hops(b, a)

    def test_self_distance_zero(self):
        assert MESH_4X4.hops(5, 5) == 0
        assert MESH_4X4.latency_cycles(5, 5) == MESH_4X4.router_cycles

    def test_average_hops_4x4(self):
        """Mean Manhattan distance on a 4×4 mesh is 2.5 exactly:
        E|Δ| per dimension = 1.25 for uniform pairs over 4 positions."""
        assert MESH_4X4.average_hops == pytest.approx(2.5)

    def test_node_bounds_checked(self):
        with pytest.raises(ValueError):
            MESH_4X4.hops(0, 16)


class TestLatencyAndBandwidth:
    def test_llc_latency_grows_with_mesh(self):
        small = MeshNoc(rows=2, cols=2)
        large = MeshNoc(rows=8, cols=8)
        assert large.average_llc_latency() > small.average_llc_latency()

    def test_bisection_links_4x4(self):
        assert MESH_4X4.bisection_links == 4
        assert MESH_4X4.bisection_bandwidth_gbs == pytest.approx(
            2 * 4 * MESH_4X4.link_bandwidth_gbs
        )

    def test_bisection_exceeds_dram_peak(self):
        """Sanity: the on-chip mesh is not the bottleneck — DRAM is, which
        is why Figure 12's wall is the DDR4 controllers."""
        from repro.sim.memory import DDR4_PEAK_BANDWIDTH_GBS

        assert MESH_4X4.bisection_bandwidth_gbs > DDR4_PEAK_BANDWIDTH_GBS


class TestContention:
    def test_monotone_in_utilization(self):
        factors = [MESH_4X4.contention_factor(u / 10) for u in range(10)]
        assert factors == sorted(factors)
        assert factors[0] == pytest.approx(1.0)

    def test_saturation_capped(self):
        assert MESH_4X4.contention_factor(0.999) <= 8.0
        assert MESH_4X4.contention_factor(1.5) == 8.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MESH_4X4.contention_factor(-0.1)


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            MeshNoc(rows=0, cols=4)
        with pytest.raises(ValueError):
            MeshNoc(hop_cycles=-1)


class TestRegistry:
    def test_system_registry_names(self):
        from repro.sim.soc import system_registry

        registry = system_registry()
        assert {"gem5-InOrder", "gem5-OoO", "RTL-InOrder",
                "16-core gem5-OoO"} == set(registry)
        assert registry["16-core gem5-OoO"].cores == 16
