"""Tests for the stat predictors — the fidelity contract (repro.sim.cost_model).

Distance-only predictions must match the instrumented aligners *exactly*;
traceback predictions must match within tolerance.  These tests are what
licenses using the predictors for the 1 Mbp experiments.
"""

import pytest

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
from repro.baselines import (
    BitapAligner,
    BpmAligner,
    DarwinGactAligner,
    EdlibAligner,
    GenasmCpuAligner,
    NeedlemanWunschAligner,
)
from repro.sim.cost_model import (
    expected_distance,
    predict_banded_gmx,
    predict_bitap,
    predict_bpm,
    predict_darwin_gact,
    predict_edlib,
    predict_full_gmx,
    predict_genasm_cpu,
    predict_nw,
    predict_windowed_gmx,
)


def _make_pair(rng, n=None):
    n = n or rng.randint(50, 400)
    pattern = random_dna(n, rng)
    text = mutate_dna(pattern, max(1, n // 15), rng)
    return pattern, text, scalar_edit_distance(pattern, text)


def assert_stats_equal(measured, predicted):
    assert dict(measured.instructions) == dict(predicted.instructions)
    assert measured.dp_cells == predicted.dp_cells
    assert measured.dp_bytes_read == predicted.dp_bytes_read
    assert measured.dp_bytes_written == predicted.dp_bytes_written
    assert measured.tiles == predicted.tiles
    assert measured.hot_bytes == predicted.hot_bytes


class TestExactDistanceOnlyContract:
    def test_full_gmx(self, rng):
        for _ in range(5):
            p, t, d = _make_pair(rng)
            measured = FullGmxAligner().align(p, t, traceback=False).stats
            assert_stats_equal(
                measured, predict_full_gmx(len(p), len(t), traceback=False)
            )

    def test_banded_gmx(self, rng):
        for _ in range(5):
            p, t, d = _make_pair(rng)
            measured = BandedGmxAligner().align(p, t, traceback=False).stats
            assert_stats_equal(
                measured,
                predict_banded_gmx(len(p), len(t), traceback=False, distance=d),
            )

    def test_nw(self, rng):
        p, t, d = _make_pair(rng)
        measured = NeedlemanWunschAligner().align(p, t, traceback=False).stats
        assert_stats_equal(measured, predict_nw(len(p), len(t), traceback=False))

    def test_bpm(self, rng):
        p, t, d = _make_pair(rng)
        measured = BpmAligner().align(p, t, traceback=False).stats
        assert_stats_equal(measured, predict_bpm(len(p), len(t), traceback=False))

    def test_edlib(self, rng):
        for _ in range(5):
            p, t, d = _make_pair(rng)
            measured = EdlibAligner().align(p, t, traceback=False).stats
            assert_stats_equal(
                measured,
                predict_edlib(len(p), len(t), traceback=False, distance=d),
            )

    def test_bitap(self, rng):
        for _ in range(5):
            p, t, d = _make_pair(rng, n=rng.randint(30, 120))
            measured = BitapAligner().align(p, t, traceback=False).stats
            assert_stats_equal(
                measured,
                predict_bitap(len(p), len(t), traceback=False, distance=d),
            )


class TestTracebackTolerance:
    TOLERANCE = 0.25

    def _check(self, measured, predicted, tolerance=TOLERANCE):
        ratio = predicted.total_instructions / measured.total_instructions
        assert 1 - tolerance < ratio < 1 + tolerance

    def test_full_gmx_traceback(self, rng):
        p, t, d = _make_pair(rng)
        measured = FullGmxAligner().align(p, t).stats
        self._check(
            measured, predict_full_gmx(len(p), len(t), traceback=True, distance=d)
        )

    def test_windowed_gmx(self, rng):
        p, t, d = _make_pair(rng, n=500)
        measured = WindowedGmxAligner().align(p, t).stats
        self._check(measured, predict_windowed_gmx(len(p), len(t), distance=d))

    def test_genasm(self, rng):
        p, t, d = _make_pair(rng, n=500)
        measured = GenasmCpuAligner().align(p, t).stats
        predicted = predict_genasm_cpu(len(p), len(t), distance=d)
        # Bitap's per-window k-doubling makes this the coarsest predictor.
        ratio = predicted.total_instructions / measured.total_instructions
        assert 0.4 < ratio < 2.5

    def test_darwin(self, rng):
        p, t, d = _make_pair(rng, n=500)
        measured = DarwinGactAligner().align(p, t).stats
        self._check(measured, predict_darwin_gact(len(p), len(t)), tolerance=0.35)


class TestExpectedDistance:
    def test_generator_calibration(self, rng):
        """The 0.85·e·n rule must match the workload generator closely."""
        from repro.workloads import generate_pair

        import random as random_module

        total_expected = 0
        total_actual = 0
        gen_rng = random_module.Random(42)
        for _ in range(30):
            pair = generate_pair(400, 0.10, gen_rng)
            total_expected += expected_distance(400, 0.10)
            total_actual += scalar_edit_distance(pair.pattern, pair.text)
        assert abs(total_expected - total_actual) / total_actual < 0.15

    def test_zero_error(self):
        assert expected_distance(1000, 0.0) == 0


class TestScalePredictions:
    def test_1mbp_predictions_are_finite_and_fast(self):
        """The whole point: predicting megabase stats without running them."""
        distance = expected_distance(1_000_000, 0.15)
        banded = predict_banded_gmx(
            1_000_000, 1_000_000, traceback=True, distance=distance, band=3_000
        )
        windowed = predict_windowed_gmx(1_000_000, 1_000_000, distance=distance)
        assert banded.total_instructions > windowed.total_instructions
        assert windowed.dp_bytes_peak < 10_000  # constant window memory

    def test_full_gmx_1mbp_footprint_matches_paper_exclusion(self):
        """§7.3 excludes Full(GMX) at 1 Mbp: >10 GB of edge state."""
        stats = predict_full_gmx(1_000_000, 1_000_000, traceback=True)
        assert stats.dp_bytes_peak > 10 * 2**30
