"""Cross-validation: address traces through the cache simulator must agree
with the analytic residence/spill model the figures rely on."""

import pytest

from repro.sim.cache import CacheConfig, CacheHierarchy
from repro.sim.memory import MemorySystemConfig, classify_kernel
from repro.sim.trace import bpm_trace, full_gmx_trace, nw_trace, replay

KB = 1024


def small_hierarchy(l1=8 * KB, llc=64 * KB):
    return CacheHierarchy(
        [
            CacheConfig("L1", l1, 4, latency_cycles=2),
            CacheConfig("LLC", llc, 8, latency_cycles=12),
        ]
    )


def small_memory_config(l1=8 * KB, llc=64 * KB):
    return MemorySystemConfig(
        levels=(
            CacheConfig("L1", l1, 4, latency_cycles=2),
            CacheConfig("LLC", llc, 8, latency_cycles=12),
        )
    )


class TestFullGmxTrace:
    def test_fitting_matrix_causes_no_dram_traffic(self):
        """512×512 at T=8: 4096 tiles × 16 B = 64 KiB exactly fills the LLC."""
        hierarchy = small_hierarchy(llc=128 * KB)
        replay(full_gmx_trace(512, 512, tile_size=8), hierarchy)
        llc = hierarchy.stats_by_level["LLC"]
        # Only cold fills reach memory; no capacity thrash.
        lines = 4096 * 16 // 64
        assert hierarchy.memory_accesses <= lines * 1.1
        assert llc.writebacks == 0

    def test_hot_column_hits_l1(self):
        """The compute phase's reads (previous column) should mostly hit."""
        hierarchy = small_hierarchy()
        replay(full_gmx_trace(256, 256, tile_size=8, traceback=False), hierarchy)
        l1 = hierarchy.stats_by_level["L1"]
        # One tile-column of edges (32 × 16 B) is far below the 8 KiB L1.
        assert l1.miss_rate < 0.30

    def test_agrees_with_analytic_classification(self):
        config = small_memory_config()
        tiles = (256 // 8) * (256 // 8)
        traffic = classify_kernel(
            config,
            hot_bytes=(256 // 8 + 1) * 2,
            total_bytes=tiles * 16,
            bytes_read=tiles * 16,
            bytes_written=tiles * 16,
        )
        hierarchy = small_hierarchy()
        replay(full_gmx_trace(256, 256, tile_size=8), hierarchy)
        # Analytic: 16 KiB matrix < 64 KiB LLC → no spill.  Simulated: the
        # LLC must not write back dirty lines (beyond cold behaviour).
        assert traffic.dram_bytes == 0
        assert hierarchy.stats_by_level["LLC"].writebacks == 0


class TestBpmTrace:
    def test_traceback_history_spills_when_larger_than_llc(self):
        """512 bp with 8-bit blocks → 512 cols × 64 blocks × 32 B = 1 MiB."""
        hierarchy = small_hierarchy()
        replay(bpm_trace(512, 512, word_size=8), hierarchy)
        llc = hierarchy.stats_by_level["LLC"]
        assert llc.writebacks > 1000  # dirty history lines stream out
        config = small_memory_config()
        history_bytes = 512 * 64 * 32
        traffic = classify_kernel(
            config,
            hot_bytes=2 * 64,
            total_bytes=history_bytes,
            bytes_read=history_bytes // 2,
            bytes_written=history_bytes,
        )
        assert traffic.dram_bytes > 0
        # Simulated spill within 2× of the analytic estimate.
        simulated_spill = llc.writebacks * 64
        assert simulated_spill == pytest.approx(traffic.dram_bytes, rel=1.0)

    def test_distance_mode_stays_resident(self):
        hierarchy = small_hierarchy()
        replay(bpm_trace(512, 512, word_size=8, traceback=False), hierarchy)
        l1 = hierarchy.stats_by_level["L1"]
        assert l1.miss_rate < 0.05  # one in-place column: pure L1 hits
        assert hierarchy.stats_by_level["LLC"].writebacks == 0


class TestNwTrace:
    def test_row_major_locality(self):
        """NW reads up/left/diag: left and diag hit, up hits the last row."""
        hierarchy = small_hierarchy(l1=16 * KB)
        replay(nw_trace(96, 96), hierarchy)
        l1 = hierarchy.stats_by_level["L1"]
        # Two rows (2 × 97 × 4 B ≈ 0.8 KiB) fit in L1: high hit rate.
        assert l1.miss_rate < 0.05

    def test_matrix_larger_than_llc_streams(self):
        hierarchy = small_hierarchy()
        replay(nw_trace(300, 300), hierarchy)  # 90000 cells × 4 B ≈ 352 KiB
        assert hierarchy.stats_by_level["LLC"].writebacks > 1000
