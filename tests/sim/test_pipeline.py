"""Tests for the micro-op pipeline simulator (repro.sim.pipeline)."""

import pytest

from repro.sim.pipeline import (
    InOrderPipeline,
    MicroOp,
    synthesize_bpm_column,
    synthesize_full_gmx_compute,
)


class TestPipelineMechanics:
    def test_independent_ops_issue_every_cycle(self):
        pipeline = InOrderPipeline()
        result = pipeline.run([MicroOp("int_alu") for _ in range(100)])
        assert result.cycles == 100
        assert result.stall_cycles == 0
        assert result.ipc == pytest.approx(1.0)

    def test_load_use_stall(self):
        pipeline = InOrderPipeline()
        result = pipeline.run([MicroOp("load"), MicroOp("int_alu", (0,))])
        # Load issues at cycle 1, result ready at 3; consumer stalls to 3.
        assert result.cycles == 3
        assert result.stall_cycles == 1

    def test_gmx_tb_serial_chain(self):
        """Chained gmx.tb ops expose the full 6-cycle latency (§6.3)."""
        pipeline = InOrderPipeline()
        ops = [MicroOp("gmx_tb")]
        for i in range(1, 10):
            ops.append(MicroOp("gmx_tb", (i - 1,)))
        result = pipeline.run(ops)
        # Each dependent gmx.tb waits latency−1 extra cycles on gmx_pos.
        assert 9 * 5 <= result.cycles <= 10 * 6

    def test_misprediction_flush(self):
        pipeline = InOrderPipeline(branch_penalty=4)
        result = pipeline.run(
            [MicroOp("branch"), MicroOp("branch", mispredicted=True)]
        )
        assert result.flush_cycles == 4
        assert result.cycles == 6

    def test_future_source_rejected(self):
        pipeline = InOrderPipeline()
        with pytest.raises(ValueError):
            pipeline.run([MicroOp("int_alu", (0,))])

    def test_unknown_kind_rejected(self):
        pipeline = InOrderPipeline()
        with pytest.raises(ValueError):
            pipeline.run([MicroOp("warp_drive")])

    def test_long_stream_constant_memory(self):
        """A million-op stream must run (the window keeps state bounded)."""
        pipeline = InOrderPipeline()
        ops = (MicroOp("int_alu") for _ in range(1_000_000))
        result = pipeline.run(ops)
        assert result.instructions == 1_000_000


class TestKernelSynthesis:
    def test_full_gmx_cycles_near_analytic_recipe(self):
        """Pipeline-level and closed-form in-order costs must agree.

        Analytic recipe: ~11 issue slots per tile plus ~1 exposed gmx
        cycle; the pipeline adds the real load-use and ΔH-chain stalls.
        """
        tile_rows, tile_columns = 8, 8
        pipeline = InOrderPipeline()
        result = pipeline.run(
            synthesize_full_gmx_compute(tile_rows, tile_columns)
        )
        tiles = tile_rows * tile_columns
        cycles_per_tile = result.cycles / tiles
        assert 11 <= cycles_per_tile <= 16

    def test_bpm_cycles_match_serial_chain(self):
        """The 17-op serial chain bounds BPM at ~17+ cycles per block."""
        pipeline = InOrderPipeline()
        result = pipeline.run(synthesize_bpm_column(blocks=4, columns=16))
        steps = 4 * 16
        cycles_per_step = result.cycles / steps
        assert 17 <= cycles_per_step <= 28

    def test_gmx_beats_bpm_per_cell(self):
        """The headline: tiles amortise; with T=8 tiles, GMX needs far
        fewer cycles per DP cell than the 17-op block step per 64 cells."""
        pipeline = InOrderPipeline()
        tile = 8
        gmx = pipeline.run(synthesize_full_gmx_compute(4, 4))
        gmx_per_cell = gmx.cycles / (16 * tile * tile)
        bpm = pipeline.run(synthesize_bpm_column(blocks=4, columns=16))
        bpm_per_cell = bpm.cycles / (4 * 16 * 64)
        assert gmx_per_cell < bpm_per_cell

    def test_distance_only_trace_is_cheaper(self):
        pipeline = InOrderPipeline()
        with_stores = pipeline.run(synthesize_full_gmx_compute(8, 8))
        without = pipeline.run(
            synthesize_full_gmx_compute(8, 8, store_edges=False)
        )
        assert without.cycles < with_stores.cycles
