"""Tests for the detailed system simulation (repro.sim.system).

The headline requirement: the detailed path (micro-op pipeline + cache
replay) and the fast analytic path must agree within a small factor on
kernels small enough to run both — that consistency licenses the analytic
path at megabase scales.
"""

import pytest

from repro.sim.core_model import estimate_kernel
from repro.sim.cost_model import predict_bpm, predict_full_gmx
from repro.sim.soc import GEM5_INORDER, GEM5_OOO, RTL_INORDER
from repro.sim.system import DETAILED_KERNELS, simulate_kernel_detailed


class TestDetailedSimulation:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            simulate_kernel_detailed("quantum", 100, 100, RTL_INORDER)

    def test_produces_cache_stats(self):
        estimate = simulate_kernel_detailed("full-gmx", 512, 512, RTL_INORDER)
        assert "L1d" in estimate.cache_stats
        assert estimate.cache_stats["L1d"].accesses > 0
        assert estimate.cycles >= estimate.pipeline.cycles

    def test_seconds_conversion(self):
        estimate = simulate_kernel_detailed("full-gmx", 128, 128, RTL_INORDER)
        assert estimate.seconds(1.0) == pytest.approx(estimate.cycles / 1e9)

    @pytest.mark.parametrize("kernel", DETAILED_KERNELS)
    def test_ooo_faster_than_inorder(self, kernel):
        inorder = simulate_kernel_detailed(kernel, 512, 512, GEM5_INORDER)
        ooo = simulate_kernel_detailed(kernel, 512, 512, GEM5_OOO)
        assert ooo.cycles < inorder.cycles


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize(
        "kernel,predictor", [("full-gmx", predict_full_gmx), ("bpm", predict_bpm)]
    )
    def test_within_factor_of_analytic(self, kernel, predictor):
        """Detailed vs analytic cycles within 2.5× on a 1 kbp kernel."""
        n = m = 1_024
        detailed = simulate_kernel_detailed(kernel, n, m, GEM5_INORDER)
        stats = predictor(n, m, traceback=True, distance=40)
        analytic = estimate_kernel(stats, GEM5_INORDER.core, GEM5_INORDER.memory)
        ratio = detailed.cycles / analytic.cycles
        assert 0.4 < ratio < 2.5, ratio

    def test_ranking_preserved(self):
        """GMX must beat BPM per cell in both modelling paths."""
        n = m = 1_024
        cells = n * m
        detailed_gmx = simulate_kernel_detailed("full-gmx", n, m, GEM5_INORDER)
        detailed_bpm = simulate_kernel_detailed("bpm", n, m, GEM5_INORDER)
        assert detailed_gmx.cycles / cells < detailed_bpm.cycles / cells
        analytic_gmx = estimate_kernel(
            predict_full_gmx(n, m, traceback=True, distance=40),
            GEM5_INORDER.core,
            GEM5_INORDER.memory,
        )
        analytic_bpm = estimate_kernel(
            predict_bpm(n, m, traceback=True, distance=40),
            GEM5_INORDER.core,
            GEM5_INORDER.memory,
        )
        assert analytic_gmx.cycles < analytic_bpm.cycles
        # And the two paths agree on the *magnitude* of the gap (loosely).
        detailed_gap = detailed_bpm.cycles / detailed_gmx.cycles
        analytic_gap = analytic_bpm.cycles / analytic_gmx.cycles
        assert 0.3 < detailed_gap / analytic_gap < 3.0
