"""Tests for the core timing models (repro.sim.core_model)."""

import pytest

from repro.align.base import KernelStats
from repro.sim.core_model import estimate_kernel, throughput_alignments_per_second
from repro.sim.soc import GEM5_INORDER, GEM5_OOO, RTL_INORDER


def make_stats(
    int_alu=0, load=0, store=0, branch=0, csr=0, gmx=0, gmx_tb=0,
    hot=1024, peak=1024, read=0, written=0,
):
    stats = KernelStats()
    for klass, count in (
        ("int_alu", int_alu), ("load", load), ("store", store),
        ("branch", branch), ("csr", csr), ("gmx", gmx), ("gmx_tb", gmx_tb),
    ):
        stats.add_instr(klass, count)
    stats.hot_bytes = hot
    stats.dp_bytes_peak = peak
    stats.dp_bytes_read = read
    stats.dp_bytes_written = written
    return stats


class TestInOrder:
    def test_cpi_one_baseline(self):
        stats = make_stats(int_alu=1_000_000)
        estimate = estimate_kernel(stats, GEM5_INORDER.core, GEM5_INORDER.memory)
        assert estimate.compute_cycles == pytest.approx(1_000_000)

    def test_gmx_tb_latency_exposed(self):
        plain = make_stats(int_alu=1000)
        with_tb = make_stats(int_alu=1000, gmx_tb=100)
        a = estimate_kernel(plain, GEM5_INORDER.core, GEM5_INORDER.memory)
        b = estimate_kernel(with_tb, GEM5_INORDER.core, GEM5_INORDER.memory)
        # 100 instructions + 100 × 5 extra latency cycles
        assert b.compute_cycles - a.compute_cycles == pytest.approx(600)

    def test_loads_beyond_l1_stall(self):
        in_l1 = make_stats(load=10_000, hot=4 * 1024)
        in_l2 = make_stats(load=10_000, hot=512 * 1024)
        a = estimate_kernel(in_l1, GEM5_INORDER.core, GEM5_INORDER.memory)
        b = estimate_kernel(in_l2, GEM5_INORDER.core, GEM5_INORDER.memory)
        assert b.mem_stall_cycles > a.mem_stall_cycles


class TestOutOfOrder:
    def test_width_speeds_up_compute(self):
        stats = make_stats(int_alu=1_000_000)
        inorder = estimate_kernel(stats, GEM5_INORDER.core, GEM5_INORDER.memory)
        ooo = estimate_kernel(stats, GEM5_OOO.core, GEM5_OOO.memory)
        assert ooo.compute_cycles < inorder.compute_cycles / 2

    def test_mlp_hides_load_latency(self):
        stats = make_stats(load=100_000, hot=512 * 1024)
        inorder = estimate_kernel(stats, GEM5_INORDER.core, GEM5_INORDER.memory)
        ooo = estimate_kernel(stats, GEM5_OOO.core, GEM5_OOO.memory)
        assert ooo.mem_stall_cycles < inorder.mem_stall_cycles / 4

    def test_gmx_unit_can_be_the_bottleneck(self):
        stats = make_stats(gmx=1_000_000)
        estimate = estimate_kernel(stats, GEM5_OOO.core, GEM5_OOO.memory)
        # 1.5 cycles effective per dependent gmx.v/gmx.h pair member.
        assert estimate.compute_cycles >= 1_400_000


class TestBandwidthWall:
    def test_streaming_kernel_is_bandwidth_bound(self):
        stats = make_stats(
            int_alu=1000,
            hot=4 * 1024,
            peak=200 * 1024 * 1024,
            read=200 * 1024 * 1024,
            written=200 * 1024 * 1024,
        )
        estimate = estimate_kernel(stats, GEM5_OOO.core, GEM5_OOO.memory)
        assert estimate.bandwidth_bound

    def test_bandwidth_share_slows_streaming(self):
        stats = make_stats(
            int_alu=1000,
            hot=4 * 1024,
            peak=200 * 1024 * 1024,
            read=200 * 1024 * 1024,
            written=200 * 1024 * 1024,
        )
        full = estimate_kernel(stats, GEM5_OOO.core, GEM5_OOO.memory)
        shared = estimate_kernel(
            stats, GEM5_OOO.core, GEM5_OOO.memory, bandwidth_share=0.25
        )
        assert shared.seconds > 3 * full.seconds

    def test_invalid_share_rejected(self):
        with pytest.raises(ValueError):
            estimate_kernel(
                make_stats(int_alu=1),
                GEM5_OOO.core,
                GEM5_OOO.memory,
                bandwidth_share=0,
            )


class TestThroughputHelper:
    def test_pairs_scale_throughput(self):
        stats = make_stats(int_alu=1_000_000)
        one = throughput_alignments_per_second(
            stats, 1, RTL_INORDER.core, RTL_INORDER.memory
        )
        ten = throughput_alignments_per_second(
            stats, 10, RTL_INORDER.core, RTL_INORDER.memory
        )
        assert ten == pytest.approx(10 * one)

    def test_zero_pairs_rejected(self):
        with pytest.raises(ValueError):
            throughput_alignments_per_second(
                make_stats(int_alu=1), 0, RTL_INORDER.core, RTL_INORDER.memory
            )
