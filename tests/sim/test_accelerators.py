"""Tests for the DSA comparator models (repro.sim.accelerators)."""

import pytest

from repro.sim.accelerators import (
    TABLE2_SPECS,
    darwin_gact_model,
    genasm_vault_model,
    table2_rows,
    throughput_per_area,
)


class TestTable2Data:
    def test_gmx_rows_match_paper(self):
        by_name = {spec.name: spec for spec in TABLE2_SPECS}
        assert by_name["GMX Unit"].peak_gcups_per_pe == 1024.0
        assert by_name["GMX Unit"].area_per_pe == 0.02
        assert by_name["Core+GMX"].area_per_pe == 1.24
        assert by_name["GenASM"].peak_gcups_per_pe == 64.0
        assert by_name["Darwin"].gap_affine

    def test_gmx_has_best_gcups_per_pe(self):
        """Table 2's takeaway: GMX offers the highest GCUPS per PE."""
        gmx = next(s for s in TABLE2_SPECS if s.name == "GMX Unit")
        assert all(
            s.peak_gcups_per_pe <= gmx.peak_gcups_per_pe for s in TABLE2_SPECS
        )

    def test_throughput_per_area_only_for_mm2_entries(self):
        gpu = next(s for s in TABLE2_SPECS if s.device == "GPU")
        assert throughput_per_area(gpu) is None

    def test_rows_cover_all_specs(self):
        assert len(table2_rows()) == len(TABLE2_SPECS)


class TestWindowedModels:
    def test_window_counts(self):
        genasm = genasm_vault_model()
        assert genasm.windows_for(96) == 1
        assert genasm.windows_for(97) == 2
        assert genasm.windows_for(10_000) == 1 + -(-(10_000 - 96) // 64)

    def test_genasm_area_ratio_vs_gmx(self):
        """§7.4: GMX needs 15.46× less area than one GenASM vault."""
        assert genasm_vault_model().area_mm2 / 0.0216 == pytest.approx(
            15.46, rel=0.01
        )

    def test_darwin_area_ratio_vs_gmx(self):
        """§7.4: 26.29× less area than one Darwin GACT PE."""
        assert darwin_gact_model().area_mm2 / 0.0216 == pytest.approx(
            26.29, rel=0.01
        )

    def test_throughput_decreases_with_length(self):
        genasm = genasm_vault_model()
        assert genasm.alignments_per_second(
            1_000, 0.15
        ) > genasm.alignments_per_second(10_000, 0.15)

    def test_darwin_slower_than_genasm_per_window(self):
        """Host orchestration makes the loosely-coupled PE slower (§7.4)."""
        assert darwin_gact_model().window_cycles() > genasm_vault_model().window_cycles()
