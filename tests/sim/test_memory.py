"""Tests for the analytic memory model (repro.sim.memory)."""

import pytest

from repro.sim.cache import CacheConfig
from repro.sim.memory import (
    MemorySystemConfig,
    bandwidth_limited_time,
    classify_kernel,
)

KB = 1024
MB = 1024 * KB

CONFIG = MemorySystemConfig(
    levels=(
        CacheConfig("L1", 64 * KB, 4, latency_cycles=2),
        CacheConfig("L2", 1 * MB, 8, latency_cycles=12),
        CacheConfig("LLC", 1 * MB, 16, latency_cycles=30),
    ),
    dram_latency_cycles=120,
    dram_bandwidth_gbs=47.8,
)


class TestResidence:
    def test_residence_levels(self):
        assert CONFIG.residence_level(1 * KB) == 0
        assert CONFIG.residence_level(512 * KB) == 1
        assert CONFIG.residence_level(1 * MB) == 1
        assert CONFIG.residence_level(100 * MB) == 3

    def test_access_latency_accumulates_down_the_hierarchy(self):
        assert CONFIG.access_latency(0) == 2
        assert CONFIG.access_latency(1) == 14
        assert CONFIG.access_latency(2) == 44
        assert CONFIG.access_latency(3) == 164


class TestClassification:
    def test_cache_resident_kernel_has_no_dram_traffic(self):
        traffic = classify_kernel(CONFIG, 8 * KB, 256 * KB, 10 * MB, 10 * MB)
        assert traffic.dram_bytes == 0
        assert traffic.hot_level == 0

    def test_spilling_kernel_streams_to_dram(self):
        """Full(BPM)'s regime: matrices far beyond the LLC (Fig. 12).

        Only the write-once stream reaches DRAM; reads are hot."""
        traffic = classify_kernel(CONFIG, 2 * KB, 50 * MB, 50 * MB, 50 * MB)
        assert 45 * MB < traffic.dram_bytes <= 50 * MB

    def test_partial_spill_scales_with_excess(self):
        half_spill = classify_kernel(CONFIG, 2 * KB, 2 * MB, 8 * MB, 8 * MB)
        assert 0 < half_spill.dram_bytes < 16 * MB


class TestBandwidthWall:
    def test_compute_bound_when_traffic_small(self):
        assert bandwidth_limited_time(0, 1.0, 47.8) == 1.0
        assert bandwidth_limited_time(1000, 1.0, 47.8) == 1.0

    def test_bandwidth_bound_when_traffic_large(self):
        seconds = bandwidth_limited_time(47_800_000_000, 0.1, 47.8)
        assert seconds == pytest.approx(1.0)
