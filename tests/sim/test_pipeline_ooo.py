"""Tests for the out-of-order pipeline model (repro.sim.pipeline)."""

import pytest

from repro.sim.pipeline import (
    InOrderPipeline,
    MicroOp,
    OutOfOrderPipeline,
    synthesize_bpm_column,
    synthesize_full_gmx_compute,
)


class TestMechanics:
    def test_width_limits_independent_ipc(self):
        pipeline = OutOfOrderPipeline(width=4)
        result = pipeline.run([MicroOp("int_alu") for _ in range(1000)])
        assert result.ipc == pytest.approx(4.0, rel=0.05)

    def test_serial_chain_is_latency_bound(self):
        pipeline = OutOfOrderPipeline(width=8)
        ops = [MicroOp("int_alu")]
        for i in range(1, 400):
            ops.append(MicroOp("int_alu", (i - 1,)))
        result = pipeline.run(ops)
        assert result.ipc == pytest.approx(1.0, rel=0.1)

    def test_gmx_tb_structural_hazard(self):
        """One GMX unit, unpipelined gmx.tb: 6 cycles each, even if
        independent — the §6.3 multicycle design."""
        pipeline = OutOfOrderPipeline(width=8)
        result = pipeline.run([MicroOp("gmx_tb") for _ in range(20)])
        assert result.cycles >= 20 * 6

    def test_gmx_vh_pipelined_throughput(self):
        """gmx.v/gmx.h are pipelined: one per cycle despite 2-cycle latency."""
        pipeline = OutOfOrderPipeline(width=8)
        result = pipeline.run([MicroOp("gmx") for _ in range(100)])
        assert result.cycles <= 110

    def test_rob_limits_runahead(self):
        """A tiny ROB serialises behind a long-latency op."""
        ops = [MicroOp("gmx_tb")]
        ops.extend(MicroOp("int_alu") for _ in range(64))
        small = OutOfOrderPipeline(width=4, rob_size=4).run(ops)
        large = OutOfOrderPipeline(width=4, rob_size=128).run(ops)
        assert small.cycles >= large.cycles

    def test_misprediction_stalls_fetch(self):
        ops = [MicroOp("branch", mispredicted=True)]
        ops.extend(MicroOp("int_alu") for _ in range(8))
        result = OutOfOrderPipeline(width=4, branch_penalty=12).run(ops)
        assert result.cycles > 12
        assert result.flush_cycles == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            OutOfOrderPipeline(width=0)
        with pytest.raises(ValueError):
            OutOfOrderPipeline(width=8, rob_size=4)
        with pytest.raises(ValueError):
            OutOfOrderPipeline().run([MicroOp("int_alu", (0,))])
        with pytest.raises(ValueError):
            OutOfOrderPipeline().run([MicroOp("hyperdrive")])


class TestKernelsOutOfOrder:
    def test_ooo_speeds_up_full_gmx(self):
        """Figure 11's direction at micro-op fidelity."""
        stream = list(synthesize_full_gmx_compute(8, 8))
        inorder = InOrderPipeline().run(iter(stream))
        ooo = OutOfOrderPipeline(width=4).run(iter(stream))
        speedup = inorder.cycles / ooo.cycles
        assert 2.0 < speedup < 5.0

    def test_bpm_gains_less_from_ooo_than_gmx(self):
        """BPM's 17-op serial chain throttles out-of-order gains —
        dependency-bound kernels can't use the width."""
        gmx_stream = list(synthesize_full_gmx_compute(8, 8))
        bpm_stream = list(synthesize_bpm_column(8, 64))
        gmx_speedup = (
            InOrderPipeline().run(iter(gmx_stream)).cycles
            / OutOfOrderPipeline(width=4).run(iter(gmx_stream)).cycles
        )
        bpm_speedup = (
            InOrderPipeline().run(iter(bpm_stream)).cycles
            / OutOfOrderPipeline(width=4).run(iter(bpm_stream)).cycles
        )
        assert bpm_speedup < gmx_speedup
