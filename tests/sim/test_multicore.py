"""Tests for the multicore scaling model (repro.sim.multicore)."""

import pytest

from repro.sim.cost_model import expected_distance, predict_bpm, predict_full_gmx
from repro.sim.multicore import multicore_scaling
from repro.sim.soc import MULTICORE_OOO

THREADS = [1, 2, 4, 8, 16]


def scale(stats, length):
    return multicore_scaling(
        stats, 1, length, length,
        MULTICORE_OOO.core, MULTICORE_OOO.memory, THREADS,
    )


class TestScalingShapes:
    def test_cache_resident_kernel_scales_linearly(self):
        """Fig. 12: GMX kernels scale (near-)linearly."""
        stats = predict_full_gmx(
            5_000, 5_000, traceback=True, distance=expected_distance(5_000, 0.15)
        )
        points = scale(stats, 5_000)
        assert points[-1].speedup > 13

    def test_bpm_hits_the_bandwidth_wall_at_long_lengths(self):
        """Fig. 12: Full(BPM) at 10 kbp exceeds the DDR4 controllers."""
        stats = predict_bpm(
            10_000, 10_000, traceback=True,
            distance=expected_distance(10_000, 0.15),
        )
        points = scale(stats, 10_000)
        assert points[-1].speedup < 9
        assert points[-1].utilization > 0.9

    def test_bpm_scales_at_short_lengths(self):
        """Fig. 12: at ~1 kbp the matrices still fit in the caches."""
        stats = predict_bpm(
            1_000, 1_000, traceback=True, distance=expected_distance(1_000, 0.15)
        )
        points = scale(stats, 1_000)
        assert points[-1].speedup > 10

    def test_speedup_monotone_in_threads(self):
        stats = predict_full_gmx(2_000, 2_000, traceback=True, distance=255)
        speedups = [p.speedup for p in scale(stats, 2_000)]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)

    def test_bandwidth_never_exceeds_peak(self):
        for stats_fn, length in (
            (predict_bpm, 10_000),
            (predict_full_gmx, 10_000),
        ):
            stats = stats_fn(
                length, length, traceback=True,
                distance=expected_distance(length, 0.15),
            )
            for point in scale(stats, length):
                assert (
                    point.bandwidth_gbs
                    <= MULTICORE_OOO.memory.dram_bandwidth_gbs * 1.001
                )

    def test_invalid_pairs_rejected(self):
        stats = predict_full_gmx(100, 100, traceback=False)
        with pytest.raises(ValueError):
            multicore_scaling(
                stats, 0, 100, 100,
                MULTICORE_OOO.core, MULTICORE_OOO.memory, THREADS,
            )
