"""Tests for the set-associative cache simulator (repro.sim.cache)."""

import pytest

from repro.sim.cache import Cache, CacheConfig, CacheHierarchy


def tiny_cache(size=1024, ways=2, line=64, latency=1, next_level=None):
    return Cache(
        CacheConfig("L1", size, ways, line_bytes=line, latency_cycles=latency),
        next_level,
    )


class TestGeometry:
    def test_num_sets(self):
        config = CacheConfig("L1", 32 * 1024, 4, line_bytes=64)
        assert config.num_sets == 128

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, line_bytes=64)
        with pytest.raises(ValueError):
            CacheConfig("bad", 0, 1)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_spatial_locality_within_line(self):
        cache = tiny_cache(line=64)
        cache.access(0)
        cache.access(63)
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        # 2-way, 8 sets of 64B lines: three lines mapping to set 0.
        cache = tiny_cache(size=1024, ways=2, line=64)
        set_stride = 8 * 64
        cache.access(0)
        cache.access(set_stride)
        cache.access(2 * set_stride)  # evicts line 0 (LRU)
        cache.access(0)
        assert cache.stats.misses == 4

    def test_lru_refresh_on_reuse(self):
        cache = tiny_cache(size=1024, ways=2, line=64)
        set_stride = 8 * 64
        cache.access(0)
        cache.access(set_stride)
        cache.access(0)  # refresh line 0
        cache.access(2 * set_stride)  # evicts line set_stride instead
        cache.access(0)
        assert cache.stats.hits == 2

    def test_writeback_on_dirty_eviction(self):
        cache = tiny_cache(size=1024, ways=2, line=64)
        set_stride = 8 * 64
        cache.access(0, write=True)
        cache.access(set_stride)
        cache.access(2 * set_stride)
        assert cache.stats.writebacks == 1

    def test_flush_writes_dirty_lines(self):
        cache = tiny_cache()
        cache.access(0, write=True)
        cache.access(128, write=True)
        cache.access(256)
        assert cache.flush() == 2


class TestHierarchy:
    def test_miss_latency_accumulates(self):
        hierarchy = CacheHierarchy(
            [
                CacheConfig("L1", 1024, 2, latency_cycles=1),
                CacheConfig("L2", 8192, 4, latency_cycles=10),
            ]
        )
        cold = hierarchy.access(0)
        warm = hierarchy.access(0)
        assert cold >= 11
        assert warm == 1

    def test_l2_catches_l1_evictions(self):
        hierarchy = CacheHierarchy(
            [
                CacheConfig("L1", 512, 1, latency_cycles=1),
                CacheConfig("L2", 64 * 1024, 8, latency_cycles=10),
            ]
        )
        # Working set of 4 KB: thrashes L1, fits L2.
        for _ in range(3):
            for address in range(0, 4096, 64):
                hierarchy.access(address)
        stats = hierarchy.stats_by_level
        assert stats["L1"].miss_rate > 0.5
        assert stats["L2"].misses == 64  # only cold misses

    def test_streaming_working_set_larger_than_llc(self):
        hierarchy = CacheHierarchy(
            [CacheConfig("L1", 1024, 2), CacheConfig("LLC", 4096, 4)]
        )
        for address in range(0, 64 * 1024, 64):
            hierarchy.access(address, write=True)
        hierarchy.finalize()
        assert hierarchy.memory_accesses >= 1024  # every line spilled

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])
