"""Worker node HTTP surface: health, shard execution, rejections."""

import http.client
import json
from urllib.parse import urlsplit

import pytest

from repro.align import FullGmxAligner
from repro.dist import DistWorker, ShardCompletion, ShardRequest, running_worker
from repro.dist.protocol import shard_checksum
from repro.serve.cache import aligner_fingerprint
from repro.workloads import generate_pair_set


def _pairs(count=3, seed=17):
    pair_set = generate_pair_set("worker", 56, 0.08, count, seed=seed)
    return [(p.pattern, p.text) for p in pair_set]


class _Client:
    def __init__(self, base_url):
        parts = urlsplit(base_url)
        self.conn = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=30
        )

    def get(self, path):
        self.conn.request("GET", path)
        return self._read()

    def post(self, path, body):
        self.conn.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json"},
        )
        return self._read()

    def _read(self):
        response = self.conn.getresponse()
        return response.status, response.read()

    def close(self):
        self.conn.close()


@pytest.fixture()
def node():
    aligner = FullGmxAligner()
    with running_worker(aligner, node="n0", incarnation=2) as (worker, url):
        client = _Client(url)
        yield client, worker, aligner
        client.close()


def _request(aligner, pairs, *, epoch=1, fingerprint=None):
    return ShardRequest(
        shard_id=0,
        epoch=epoch,
        lo=0,
        hi=len(pairs),
        pairs=pairs,
        fingerprint=(
            aligner_fingerprint(aligner) if fingerprint is None
            else fingerprint
        ),
    )


def test_health_reports_identity(node):
    client, worker, _aligner = node
    status, body = client.get("/health")
    assert status == 200
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["node"] == "n0"
    assert payload["incarnation"] == 2
    assert payload["shards_done"] == worker.shards_done == 0


def test_shard_executes_byte_identical(node):
    client, worker, aligner = node
    pairs = _pairs()
    expected = [aligner.align(p, t) for p, t in pairs]
    status, body = client.post(
        "/shard", _request(aligner, pairs, epoch=5).to_json()
    )
    assert status == 200
    completion = ShardCompletion.from_json(body)
    assert completion.epoch == 5  # echoes the lease epoch verbatim
    assert completion.node == "n0"
    assert completion.incarnation == 2
    assert completion.checksum == shard_checksum(pairs)
    assert completion.results == expected
    assert worker.shards_done == 1


def test_fingerprint_mismatch_is_409(node):
    client, _worker, aligner = node
    status, body = client.post(
        "/shard",
        _request(aligner, _pairs(), fingerprint="other-run").to_json(),
    )
    assert status == 409
    assert "fingerprint mismatch" in json.loads(body)["error"]


def test_malformed_body_is_400(node):
    client, _worker, _aligner = node
    status, body = client.post("/shard", b"{not json")
    assert status == 400
    assert "malformed" in json.loads(body)["error"]


def test_empty_body_is_400(node):
    client, _worker, _aligner = node
    status, _body = client.post("/shard", b"")
    assert status == 400


def test_unknown_paths_are_404(node):
    client, _worker, _aligner = node
    assert client.get("/nope")[0] == 404
    assert client.post("/nope", b"{}")[0] == 404


def test_slow_fault_is_absorbed(node):
    from repro.dist import NodeFault

    client, _worker, aligner = node
    pairs = _pairs(2)
    request = _request(aligner, pairs)
    request.fault = NodeFault(kind="slow", shard=0, seconds=0.05)
    status, body = client.post("/shard", request.to_json())
    assert status == 200  # stalled below the lease, then answered normally
    completion = ShardCompletion.from_json(body)
    assert completion.results == [aligner.align(p, t) for p, t in pairs]


def test_worker_pool_is_reused_across_shards(node):
    client, worker, aligner = node
    generation = worker.pool.generation
    for seed in (1, 2, 3):
        status, _body = client.post(
            "/shard", _request(aligner, _pairs(seed=seed)).to_json()
        )
        assert status == 200
    assert worker.shards_done == 3
    assert worker.pool.generation == generation  # warm, not rebuilt


def test_direct_execute_checks_fingerprint():
    from repro.dist import DistError

    aligner = FullGmxAligner()
    worker = DistWorker(aligner, node="n1")
    try:
        with pytest.raises(DistError, match="fingerprint mismatch"):
            worker.execute(
                _request(aligner, _pairs(), fingerprint="someone-else")
            )
    finally:
        worker.close()
