"""Wire protocol: message round-trips, fault validation, checksums."""

import pytest

from repro.align import FullGmxAligner
from repro.dist import (
    NODE_FAULT_KINDS,
    NodeFault,
    NodeFaultPlan,
    ProtocolError,
    ShardCompletion,
    ShardRequest,
)
from repro.dist.protocol import shard_checksum

PAIRS = [("ACGTACGT", "ACGAACGT"), ("TTTT", "TTAT")]


class TestNodeFault:
    def test_valid_kinds(self):
        for kind in NODE_FAULT_KINDS:
            fault = NodeFault(kind=kind, shard=3, seconds=0.5)
            assert fault.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown node fault kind"):
            NodeFault(kind="meteor", shard=0)

    def test_dict_round_trip(self):
        fault = NodeFault(kind="hang", shard=7, seconds=1.5)
        assert NodeFault.from_dict(fault.to_dict()) == fault

    def test_malformed_dict_rejected(self):
        with pytest.raises(ProtocolError, match="malformed node fault"):
            NodeFault.from_dict({"kind": "hang"})


class TestShardRequest:
    def test_json_round_trip(self):
        request = ShardRequest(
            shard_id=4,
            epoch=2,
            lo=8,
            hi=10,
            pairs=PAIRS,
            traceback=False,
            fingerprint="abc123",
            want_obs=True,
            fault=NodeFault(kind="slow", shard=4, seconds=0.2),
        )
        parsed = ShardRequest.from_json(request.to_json())
        assert parsed == request
        assert parsed.pairs == PAIRS

    def test_fault_free_round_trip(self):
        request = ShardRequest(shard_id=0, epoch=1, lo=0, hi=2, pairs=PAIRS)
        parsed = ShardRequest.from_json(request.to_json())
        assert parsed.fault is None
        assert parsed.traceback is True

    def test_garbage_body_rejected(self):
        with pytest.raises(ProtocolError, match="malformed shard request"):
            ShardRequest.from_json(b"not json at all")

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError, match="malformed shard request"):
            ShardRequest.from_json(b'{"shard_id": 1}')


class TestShardCompletion:
    def test_json_round_trip_preserves_results(self):
        aligner = FullGmxAligner()
        results = [aligner.align(p, t) for p, t in PAIRS]
        completion = ShardCompletion(
            shard_id=4,
            epoch=2,
            node="node0",
            incarnation=3,
            checksum=shard_checksum(PAIRS),
            results=results,
            elapsed=0.01,
            spans=[{"name": "kernel"}],
            metrics={"counter": 1},
        )
        parsed = ShardCompletion.from_json(completion.to_json())
        assert parsed.epoch == 2
        assert parsed.node == "node0"
        assert parsed.incarnation == 3
        assert parsed.checksum == completion.checksum
        assert parsed.results == results
        assert parsed.spans == [{"name": "kernel"}]
        assert parsed.metrics == {"counter": 1}

    def test_garbage_body_rejected(self):
        with pytest.raises(ProtocolError, match="malformed shard completion"):
            ShardCompletion.from_json(b"\xff\xfe")


class TestShardChecksum:
    def test_deterministic(self):
        assert shard_checksum(PAIRS) == shard_checksum(list(PAIRS))

    def test_order_sensitive(self):
        assert shard_checksum(PAIRS) != shard_checksum(PAIRS[::-1])

    def test_content_sensitive(self):
        mutated = [("ACGTACGT", "ACGAACGA"), PAIRS[1]]
        assert shard_checksum(PAIRS) != shard_checksum(mutated)


class TestNodeFaultPlan:
    def test_deterministic_for_seed(self):
        a = NodeFaultPlan.generate(
            5, 10, 40, hang_seconds=1.0, slow_seconds=0.1
        )
        b = NodeFaultPlan.generate(
            5, 10, 40, hang_seconds=1.0, slow_seconds=0.1
        )
        assert a.faults == b.faults

    def test_distinct_shards_per_fault(self):
        plan = NodeFaultPlan.generate(
            7, 20, 25, hang_seconds=1.0, slow_seconds=0.1
        )
        targets = [fault.shard for fault in plan.faults]
        assert len(set(targets)) == len(targets) == 20
        assert all(0 <= target < 25 for target in targets)

    def test_more_faults_than_shards_rejected(self):
        from repro.dist import DistError

        with pytest.raises(DistError, match="cannot plan"):
            NodeFaultPlan.generate(
                1, 10, 5, hang_seconds=1.0, slow_seconds=0.1
            )

    def test_json_round_trip(self):
        plan = NodeFaultPlan.generate(
            3, 6, 12, hang_seconds=2.0, slow_seconds=0.2
        )
        assert NodeFaultPlan.from_json(plan.to_json()) == plan

    def test_durations_by_kind(self):
        plan = NodeFaultPlan.generate(
            11, 30, 40, hang_seconds=2.5, slow_seconds=0.25
        )
        for fault in plan.faults:
            if fault.kind == "hang":
                assert fault.seconds == 2.5
            elif fault.kind == "slow":
                assert fault.seconds == 0.25
            else:
                assert fault.seconds == 0.0
