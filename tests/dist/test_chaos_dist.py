"""Distributed chaos campaigns: real processes, real faults, exact proof.

Marked ``chaos`` (like the resilience campaigns) so CI can run the drill
standalone; the campaign here is deliberately small so the default suite
stays fast — ``repro chaos --dist`` runs the full 100-fault version.
"""

import multiprocessing

import pytest

from repro.align import FullGmxAligner
from repro.dist import NodeSupervisor, run_dist_campaign

HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())

needs_processes = pytest.mark.skipif(
    not HAS_PROCESSES, reason="no multiprocessing start method available"
)

pytestmark = [pytest.mark.chaos, needs_processes]


@pytest.mark.slow
def test_small_campaign_survives_every_fault_kind():
    report = run_dist_campaign(
        seed=13,
        faults=8,
        nodes=2,
        length=32,
        lease_timeout=1.0,
    )
    assert report.identical, "batch must be byte-identical to serial"
    assert report.accounted, "every planned fault needs a terminal outcome"
    assert report.exactly_once, "journal must hold one record per shard"
    assert report.ok
    assert report.faults == 8
    assert sum(report.outcomes.values()) == 8
    # Only terminal outcomes may appear in the ledger histogram.
    assert set(report.outcomes) <= {
        "absorbed", "retried", "expired", "stale-discarded", "degraded"
    }
    assert report.journal_entries == report.shards


@pytest.mark.slow
def test_campaign_is_seed_deterministic_in_plan():
    from repro.dist import NodeFaultPlan

    a = NodeFaultPlan.generate(
        41, 12, 30, hang_seconds=2.0, slow_seconds=0.3
    )
    b = NodeFaultPlan.generate(
        41, 12, 30, hang_seconds=2.0, slow_seconds=0.3
    )
    assert a.to_json() == b.to_json()


@pytest.mark.slow
def test_supervisor_respawns_on_same_port():
    supervisor = NodeSupervisor(FullGmxAligner(), "sup0")
    try:
        supervisor.start()
        port = supervisor.port
        assert supervisor.incarnation == 1
        assert not supervisor.ensure_alive()  # healthy: no respawn
        supervisor.process.terminate()
        supervisor.process.join(timeout=5.0)
        assert supervisor.ensure_alive()  # dead: respawned
        assert supervisor.port == port  # same port, stable URL
        assert supervisor.incarnation == 2
        assert supervisor.respawns == 1
    finally:
        supervisor.stop()


def test_report_render_and_dict_round_trip():
    # Shape-only check that doesn't boot processes: build a report from a
    # minimal campaign and exercise its presentation paths.
    report = run_dist_campaign(
        seed=3, faults=2, nodes=1, length=24, lease_timeout=0.8
    )
    text = report.render()
    assert "dist chaos campaign:" in text
    assert "byte-identical to serial" in text
    payload = report.to_dict()
    assert payload["ok"] == report.ok
    assert payload["faults"] == 2
    assert set(payload["planned"]) == {"kill", "hang", "slow", "partition"}
