"""Predicted-cost shard packing and min-ETA node selection."""

import pytest

from repro.align import FullGmxAligner
from repro.dist import pack_shards, pick_node
from repro.workloads import generate_pair_set


def _pairs(count=12, length=48, seed=9):
    pair_set = generate_pair_set("pack", length, 0.1, count, seed=seed)
    return [(p.pattern, p.text) for p in pair_set]


class TestPackShards:
    def test_contiguous_and_complete(self):
        pairs = _pairs(11)
        shards = pack_shards(FullGmxAligner(), pairs, shard_size=3)
        assert shards[0].lo == 0
        assert shards[-1].hi == len(pairs)
        for left, right in zip(shards, shards[1:]):
            assert left.hi == right.lo
        rebuilt = [pair for shard in shards for pair in shard.pairs]
        assert rebuilt == pairs

    def test_uniform_batch_packs_like_plain_sharding(self):
        pairs = _pairs(12)
        shards = pack_shards(FullGmxAligner(), pairs, shard_size=4)
        assert [shard.size for shard in shards] == [4, 4, 4]

    def test_costs_are_positive_and_annotated(self):
        shards = pack_shards(FullGmxAligner(), _pairs(6), shard_size=2)
        assert all(shard.cost > 0 for shard in shards)

    def test_monster_pair_splits_shard(self):
        # One pair 8x longer than the rest must not ride with cheap ones.
        pairs = _pairs(6, length=32)
        monster = list(generate_pair_set("monster", 256, 0.1, 1, seed=1))[0]
        pairs.insert(3, (monster.pattern, monster.text))
        shards = pack_shards(FullGmxAligner(), pairs, shard_size=4)
        monster_shards = [
            shard for shard in shards if (monster.pattern, monster.text)
            in shard.pairs
        ]
        assert len(monster_shards) == 1
        assert monster_shards[0].size == 1

    def test_single_pair_always_fits(self):
        pairs = _pairs(1)
        shards = pack_shards(
            FullGmxAligner(), pairs, shard_size=4, cost_budget=1
        )
        assert len(shards) == 1
        assert shards[0].pairs == pairs

    def test_empty_batch(self):
        assert pack_shards(FullGmxAligner(), []) == []

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError, match="shard size must be positive"):
            pack_shards(FullGmxAligner(), _pairs(2), shard_size=0)


class TestPickNode:
    def test_no_candidates(self):
        assert pick_node([], 100) is None

    def test_fresh_nodes_probe_by_name(self):
        # No history anywhere: deterministic name tiebreak.
        chosen = pick_node(
            [("b", 0, 0.0), ("a", 0, 0.0), ("c", 0, 0.0)], 100
        )
        assert chosen == "a"

    def test_min_eta_wins(self):
        # fast node: (0 + 100) / 100 = 1s; slow node: (0 + 100) / 10 = 10s
        chosen = pick_node([("fast", 0, 100.0), ("slow", 0, 10.0)], 100)
        assert chosen == "fast"

    def test_outstanding_cost_counts(self):
        # Equal speeds, but one node is already loaded.
        chosen = pick_node(
            [("busy", 500, 100.0), ("idle", 0, 100.0)], 100
        )
        assert chosen == "idle"

    def test_unprobed_node_beats_loaded_one(self):
        chosen = pick_node([("probed", 300, 50.0), ("fresh", 0, 0.0)], 100)
        assert chosen == "fresh"
