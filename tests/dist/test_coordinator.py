"""Coordinator: leasing, exactly-once epoch fencing, degradation."""

import time

import pytest

from repro.align import FullGmxAligner, align_batch
from repro.align.parallel import BatchTelemetry
from repro.dist import (
    DistConfig,
    DistCoordinator,
    DistError,
    NodeHandle,
    PackedShard,
    ShardCompletion,
    running_worker,
)
from repro.dist.coordinator import DistCounters, _Lease
from repro.dist.protocol import shard_checksum
from repro.resilience import CheckpointJournal
from repro.workloads import generate_pair_set


def _pairs(count=9, seed=31):
    pair_set = generate_pair_set("coord", 52, 0.08, count, seed=seed)
    return [(p.pattern, p.text) for p in pair_set]


class TestConstruction:
    def test_duplicate_node_names_rejected(self):
        nodes = [
            NodeHandle("n0", "http://127.0.0.1:1"),
            NodeHandle("n0", "http://127.0.0.1:2"),
        ]
        with pytest.raises(DistError, match="duplicate node name"):
            DistCoordinator(FullGmxAligner(), nodes)

    def test_bad_url_rejected_eagerly(self):
        with pytest.raises(DistError, match="needs host:port"):
            DistCoordinator(
                FullGmxAligner(), [NodeHandle("n0", "not-a-url")]
            )


class TestHappyPath:
    def test_byte_identical_to_serial(self):
        aligner = FullGmxAligner()
        pairs = _pairs()
        reference = align_batch(aligner, pairs)
        with running_worker(aligner, node="n0") as (_worker, url):
            coordinator = DistCoordinator(
                aligner,
                [NodeHandle("n0", url)],
                config=DistConfig(shard_size=3, heartbeat_interval=0.1),
            )
            outcome = coordinator.run(pairs)
        assert outcome.results == reference.results
        assert outcome.stats == reference.stats
        assert outcome.counters.shards == 3
        assert outcome.counters.leases_granted == 3
        assert outcome.counters.leases_expired == 0
        assert outcome.counters.local_shards == 0
        assert outcome.nodes["n0"]["completed"] == 3
        assert outcome.telemetry.executor == "dist"

    def test_two_nodes_split_the_batch(self):
        aligner = FullGmxAligner()
        pairs = _pairs(12)
        reference = align_batch(aligner, pairs)
        with running_worker(aligner, node="a") as (_wa, url_a):
            with running_worker(aligner, node="b") as (_wb, url_b):
                coordinator = DistCoordinator(
                    aligner,
                    [NodeHandle("a", url_a), NodeHandle("b", url_b)],
                    config=DistConfig(shard_size=2, heartbeat_interval=0.1),
                )
                outcome = coordinator.run(pairs)
        assert outcome.results == reference.results
        completed = [state["completed"] for state in outcome.nodes.values()]
        assert sum(completed) == 6
        assert all(count > 0 for count in completed)

    def test_checkpoint_resume_skips_done_shards(self, tmp_path):
        aligner = FullGmxAligner()
        pairs = _pairs(8)
        journal_path = tmp_path / "dist.ckpt"
        with running_worker(aligner, node="n0") as (_worker, url):
            nodes = [NodeHandle("n0", url)]
            config = DistConfig(shard_size=2, heartbeat_interval=0.1)
            first = DistCoordinator(
                aligner, nodes, config=config,
                checkpoint=str(journal_path),
            ).run(pairs)
            second = DistCoordinator(
                aligner, nodes, config=config,
                checkpoint=str(journal_path),
            ).run(pairs)
        assert first.results == second.results
        assert second.counters.resumed_shards == 4
        assert second.counters.leases_granted == 0
        journal = CheckpointJournal(str(journal_path), {})
        assert len(journal.entries) == 4  # exactly one record per shard


class TestGracefulDegradation:
    def test_zero_configured_nodes_runs_locally(self):
        aligner = FullGmxAligner()
        pairs = _pairs(6)
        reference = align_batch(aligner, pairs)
        coordinator = DistCoordinator(
            aligner, [], config=DistConfig(shard_size=2)
        )
        outcome = coordinator.run(pairs)
        assert outcome.results == reference.results
        assert outcome.counters.local_shards == 3
        assert outcome.counters.leases_granted == 0

    def test_all_nodes_dead_falls_back_locally(self):
        aligner = FullGmxAligner()
        pairs = _pairs(4)
        reference = align_batch(aligner, pairs)
        # Nothing listens on this port: heartbeats fail immediately.
        coordinator = DistCoordinator(
            aligner,
            [NodeHandle("ghost", "http://127.0.0.1:1")],
            config=DistConfig(
                shard_size=2,
                heartbeat_interval=0.05,
                connect_timeout=0.2,
                lease_timeout=0.5,
                local_fallback_after=0.3,
            ),
        )
        outcome = coordinator.run(pairs)
        assert outcome.results == reference.results
        assert outcome.counters.local_shards == 2
        assert outcome.nodes["ghost"]["alive"] is False


class _EventHarness:
    """Synthetic run-loop state for driving ``_handle_event`` directly."""

    def __init__(self, aligner, pairs):
        self.coordinator = DistCoordinator(
            aligner, [NodeHandle("n0", "http://127.0.0.1:1")]
        )
        self.shard = PackedShard(
            shard_id=0, lo=0, hi=len(pairs), pairs=pairs, cost=100
        )
        self.by_id = {0: self.shard}
        self.checksums = {0: shard_checksum(pairs)}
        self.epochs = {0: 1}
        self.counters = DistCounters(shards=1)
        self.telemetry = BatchTelemetry(
            workers=1, shard_size=4, executor="dist"
        )
        self.results_by_shard = {}
        self.recorded = []
        self.requeued = []
        state = self.coordinator.nodes["n0"]
        state.leases = 1
        state.outstanding_cost = self.shard.cost

    def lease(self, epoch):
        now = time.monotonic()
        lease = _Lease(
            shard_id=0, epoch=epoch, node="n0",
            deadline=now + 5.0, started=now, attempt=1,
        )
        self.leases = {0: lease}
        return lease

    def completion(self, epoch, *, results, checksum=None):
        return ShardCompletion(
            shard_id=0,
            epoch=epoch,
            node="n0",
            incarnation=1,
            checksum=(
                self.checksums[0] if checksum is None else checksum
            ),
            results=results,
        )

    def handle(self, event, *, draining=False):
        self.coordinator._handle_event(
            event,
            self.by_id,
            self.checksums,
            self.epochs,
            self.leases,
            self.counters,
            self.telemetry,
            self.results_by_shard,
            self._record,
            self._requeue,
            draining=draining,
        )

    def _record(self, shard, results, epoch, node):
        self.results_by_shard[shard.shard_id] = results
        self.recorded.append((epoch, node))

    def _requeue(self, lease, reason):
        self.requeued.append((lease.epoch, reason))
        self.leases.pop(lease.shard_id, None)
        self.epochs[lease.shard_id] += 1


class TestLeaseEpochFencing:
    """Satellite: duplicate/zombie completions must never be accounted."""

    def _harness(self):
        aligner = FullGmxAligner()
        pairs = _pairs(2)
        results = [aligner.align(p, t) for p, t in pairs]
        return _EventHarness(aligner, pairs), results

    def test_current_epoch_completion_accounted_once(self):
        harness, results = self._harness()
        lease = harness.lease(epoch=1)
        harness.handle(
            ("completion", lease, harness.completion(1, results=results))
        )
        assert harness.recorded == [(1, "n0")]
        assert harness.counters.stale_discards == 0
        assert 0 not in harness.leases

    def test_duplicate_completion_discarded(self):
        harness, results = self._harness()
        lease = harness.lease(epoch=1)
        completion = harness.completion(1, results=results)
        harness.handle(("completion", lease, completion))
        harness.handle(("completion", lease, completion))  # the duplicate
        assert harness.recorded == [(1, "n0")]  # accounted exactly once
        assert harness.counters.stale_discards == 1
        assert harness.coordinator.nodes["n0"].stale == 1

    def test_stale_epoch_completion_discarded(self):
        harness, results = self._harness()
        old_lease = harness.lease(epoch=1)
        harness.epochs[0] = 2  # the shard was re-leased meanwhile
        harness.handle(
            ("completion", old_lease, harness.completion(1, results=results))
        )
        assert harness.recorded == []
        assert harness.counters.stale_discards == 1
        assert harness.results_by_shard == {}

    def test_corrupt_completion_requeued_not_accounted(self):
        harness, results = self._harness()
        lease = harness.lease(epoch=1)
        harness.handle(
            (
                "completion",
                lease,
                harness.completion(1, results=results, checksum=0xBAD),
            )
        )
        assert harness.recorded == []
        assert harness.counters.corrupt_completions == 1
        assert harness.requeued == [(1, "completion checksum mismatch")]

    def test_failure_from_expired_lease_ignored(self):
        harness, _results = self._harness()
        old_lease = harness.lease(epoch=1)
        harness.epochs[0] = 2
        harness.handle(("failure", old_lease, "connection reset"))
        assert harness.requeued == []
        assert harness.counters.lease_failures == 0

    def test_failure_from_current_lease_requeues(self):
        harness, _results = self._harness()
        lease = harness.lease(epoch=1)
        harness.handle(("failure", lease, "connection reset"))
        assert harness.requeued == [(1, "connection reset")]
        assert harness.counters.lease_failures == 1

    def test_failure_while_draining_ignored(self):
        harness, _results = self._harness()
        lease = harness.lease(epoch=1)
        harness.handle(("failure", lease, "late reset"), draining=True)
        assert harness.requeued == []
