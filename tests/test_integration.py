"""End-to-end integration tests across the whole library.

These tie the packages together: every exact aligner must agree with every
other on the same inputs; edit distance must behave like a metric; the
workload pipeline (generate → save → load → align → validate) must close;
and the GMX ISA path must agree with the plain kernel path.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
from repro.baselines import (
    BitapAligner,
    BpmAligner,
    EdlibAligner,
    NeedlemanWunschAligner,
)
from repro.core.alphabet import reverse_complement

dna = st.text(alphabet="ACGT", min_size=1, max_size=45)

EXACT_ALIGNERS = [
    FullGmxAligner(tile_size=8),
    BandedGmxAligner(tile_size=8),
    NeedlemanWunschAligner(),
    BpmAligner(word_size=16),
    EdlibAligner(word_size=16),
    BitapAligner(),
]


class TestCrossAlignerAgreement:
    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_all_exact_aligners_agree(self, pattern, text):
        scores = {
            aligner.name: aligner.align(pattern, text, traceback=False).score
            for aligner in EXACT_ALIGNERS
        }
        assert len(set(scores.values())) == 1, scores

    def test_agreement_on_realistic_sizes(self, rng):
        """A sweep over lengths spanning multiple tile/word boundaries."""
        for length in (31, 32, 33, 63, 64, 65, 127, 200):
            pattern = random_dna(length, rng)
            text = mutate_dna(pattern, max(1, length // 12), rng)
            expected = scalar_edit_distance(pattern, text)
            for aligner in EXACT_ALIGNERS:
                result = aligner.align(pattern, text)
                assert result.score == expected, (aligner.name, length)
                result.alignment.validate()


class TestMetricProperties:
    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        aligner = FullGmxAligner(tile_size=8)
        assert (
            aligner.align(a, b, traceback=False).score
            == aligner.align(b, a, traceback=False).score
        )

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_identity(self, a):
        assert FullGmxAligner(tile_size=8).align(a, a, traceback=False).score == 0

    @given(dna, dna, dna)
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        aligner = FullGmxAligner(tile_size=8)
        ab = aligner.align(a, b, traceback=False).score
        bc = aligner.align(b, c, traceback=False).score
        ac = aligner.align(a, c, traceback=False).score
        assert ac <= ab + bc

    @given(dna, dna)
    @settings(max_examples=30, deadline=None)
    def test_reverse_complement_invariance(self, a, b):
        """Edit distance is preserved under reverse-complementing both."""
        aligner = FullGmxAligner(tile_size=8)
        forward = aligner.align(a, b, traceback=False).score
        reverse = aligner.align(
            reverse_complement(a), reverse_complement(b), traceback=False
        ).score
        assert forward == reverse

    @given(dna, dna)
    @settings(max_examples=30, deadline=None)
    def test_length_difference_lower_bound(self, a, b):
        score = FullGmxAligner(tile_size=8).align(a, b, traceback=False).score
        assert score >= abs(len(a) - len(b))
        assert score <= max(len(a), len(b))


class TestWorkloadPipeline:
    def test_generate_save_load_align_validate(self, tmp_path):
        from repro.workloads import generate_pair_set, load_pairs, save_pairs

        original = generate_pair_set("e2e", 200, 0.08, 5, seed=11)
        path = tmp_path / "e2e.seq"
        save_pairs(original, path)
        loaded = load_pairs(path, error_rate=0.08)
        aligner = FullGmxAligner()
        reference = NeedlemanWunschAligner()
        for pair in loaded:
            result = aligner.align(pair.pattern, pair.text)
            result.alignment.validate()
            assert result.score == reference.align(
                pair.pattern, pair.text, traceback=False
            ).score


class TestHeuristicQualityEnvelope:
    def test_windowed_and_banded_bracket_the_optimum(self, rng):
        """banded(certified) == optimal ≤ windowed, on noisy pairs."""
        for _ in range(10):
            pattern = random_dna(600, rng)
            text = mutate_dna(pattern, 90, rng)
            optimal = EdlibAligner().align(pattern, text, traceback=False).score
            banded = BandedGmxAligner(tile_size=16).align(
                pattern, text, traceback=False
            )
            windowed = WindowedGmxAligner(tile_size=16).align(pattern, text)
            assert banded.exact and banded.score == optimal
            assert optimal <= windowed.score <= optimal * 1.3 + 8


class TestModelConsistency:
    def test_throughput_ordering_stable_across_systems(self):
        """GMX beats its family baseline on every modelled system."""
        from repro.eval import aligner_throughput
        from repro.sim.soc import GEM5_INORDER, GEM5_OOO, RTL_INORDER

        for system in (GEM5_INORDER, GEM5_OOO, RTL_INORDER):
            for baseline, accelerated in (
                ("Full(BPM)", "Full(GMX)"),
                ("Banded(Edlib)", "Banded(GMX)"),
                ("Windowed(GenASM-CPU)", "Windowed(GMX)"),
            ):
                slow = aligner_throughput(baseline, 2_000, 0.15, system)
                fast = aligner_throughput(accelerated, 2_000, 0.15, system)
                assert fast > slow, (system.name, baseline)

    def test_pipeline_and_analytic_model_agree_on_ranking(self):
        """The micro-op pipeline and the closed-form model must rank
        GMX vs BPM identically per DP cell."""
        from repro.sim.pipeline import (
            InOrderPipeline,
            synthesize_bpm_column,
            synthesize_full_gmx_compute,
        )

        pipeline = InOrderPipeline()
        gmx = pipeline.run(synthesize_full_gmx_compute(8, 8))
        bpm = pipeline.run(synthesize_bpm_column(blocks=8, columns=64))
        gmx_cells = 64 * 32 * 32  # 8×8 tiles of T=32
        bpm_cells = 8 * 64 * 64
        assert gmx.cycles / gmx_cells < bpm.cycles / bpm_cells
