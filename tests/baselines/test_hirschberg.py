"""Tests for Hirschberg's linear-memory aligner (repro.baselines.hirschberg)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.baselines import NeedlemanWunschAligner
from repro.baselines.hirschberg import HirschbergAligner

dna = st.text(alphabet="ACGT", min_size=1, max_size=45)


class TestCorrectness:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_optimal_and_valid(self, pattern, text):
        result = HirschbergAligner().align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    def test_distance_mode(self, rng):
        pattern = random_dna(120, rng)
        text = mutate_dna(pattern, 15, rng)
        aligner = HirschbergAligner()
        assert (
            aligner.align(pattern, text, traceback=False).score
            == aligner.align(pattern, text).score
        )

    def test_degenerate_inputs(self):
        aligner = HirschbergAligner()
        assert aligner.align("A", "A").score == 0
        assert aligner.align("A", "TTTT").score == 4  # 1 sub + 3 ins
        assert aligner.align("AAAA", "T").score == 4
        with pytest.raises(ValueError):
            aligner.align("", "A")


class TestMemoryAndWorkTradeoff:
    def test_linear_memory_even_with_traceback(self, rng):
        """The whole point: O(m) live state, unlike NW's O(n·m) matrix."""
        pattern = random_dna(200, rng)
        text = mutate_dna(pattern, 20, rng)
        hirschberg = HirschbergAligner().align(pattern, text)
        nw = NeedlemanWunschAligner().align(pattern, text)
        assert hirschberg.score == nw.score
        assert hirschberg.stats.dp_bytes_peak < nw.stats.dp_bytes_peak / 50

    def test_roughly_double_the_cells(self, rng):
        """Linear memory costs ~2× the DP-cell evaluations."""
        pattern = random_dna(256, rng)
        text = mutate_dna(pattern, 20, rng)
        hirschberg = HirschbergAligner().align(pattern, text)
        cells = len(pattern) * len(text)
        assert 1.4 * cells < hirschberg.stats.dp_cells < 2.6 * cells

    def test_gmx_edges_beat_hirschberg_recompute(self, rng):
        """GMX gets exact traceback without the 2× recomputation: fewer
        DP-cell evaluations AND a small footprint."""
        from repro.align import FullGmxAligner

        pattern = random_dna(512, rng)
        text = mutate_dna(pattern, 40, rng)
        gmx = FullGmxAligner().align(pattern, text)
        hirschberg = HirschbergAligner().align(pattern, text)
        assert gmx.score == hirschberg.score
        assert gmx.stats.dp_cells < hirschberg.stats.dp_cells
        assert gmx.stats.total_instructions < (
            hirschberg.stats.total_instructions / 50
        )
