"""Tests for substitution-matrix support in the affine module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AffineAligner,
    AffinePenalties,
    affine_score,
    affine_score_banded,
    transition_transversion_matrix,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=20)


class TestTransitionTransversion:
    def test_classification(self):
        matrix = transition_transversion_matrix(transition=1, transversion=3)
        assert matrix[("A", "G")] == 1  # purine↔purine
        assert matrix[("C", "T")] == 1  # pyrimidine↔pyrimidine
        assert matrix[("A", "C")] == 3
        assert matrix[("G", "T")] == 3
        assert ("A", "A") not in matrix

    def test_validation(self):
        with pytest.raises(ValueError):
            transition_transversion_matrix(transition=0)
        with pytest.raises(ValueError):
            transition_transversion_matrix(transition=5, transversion=2)


class TestPenaltiesWithMatrix:
    def test_substitution_lookup_and_fallback(self):
        pen = AffinePenalties(matrix={("A", "G"): 1})
        assert pen.substitution("A", "G") == 1
        assert pen.substitution("G", "A") == 1  # symmetric fallback
        assert pen.substitution("A", "C") == pen.mismatch
        assert pen.substitution("A", "A") == pen.match

    def test_substitution_table_consistent(self):
        pen = AffinePenalties(matrix=transition_transversion_matrix())
        table = pen.substitution_table()
        for a in "ACGT":
            for b in "ACGT":
                assert table[ord(a), ord(b)] == pen.substitution(a, b)


class TestScoringWithMatrix:
    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_numpy_and_python_paths_agree(self, pattern, text):
        pen = AffinePenalties(matrix=transition_transversion_matrix())
        aligner_score = AffineAligner(pen).align(pattern, text).score
        assert aligner_score == affine_score(pattern, text, pen)

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_weighted_never_exceeds_flat(self, pattern, text):
        """Transitions at 2 ≤ the flat mismatch 4: weighted score ≤ flat."""
        flat = AffinePenalties()
        weighted = AffinePenalties(matrix=transition_transversion_matrix())
        assert affine_score(pattern, text, weighted) <= affine_score(
            pattern, text, flat
        )

    def test_banded_supports_matrix(self):
        pen = AffinePenalties(matrix=transition_transversion_matrix())
        pattern, text = "ACGTACGTAC", "ACGTGCGTAC"
        assert affine_score_banded(pattern, text, 10, pen) == affine_score(
            pattern, text, pen
        )

    def test_transition_rich_pair_scores_lower(self):
        """A pair differing only by transitions beats a transversion pair."""
        pen = AffinePenalties(matrix=transition_transversion_matrix())
        transitions = affine_score("AAAA", "GGGG", pen)  # 4 transitions
        transversions = affine_score("AAAA", "CCCC", pen)
        assert transitions < transversions
