"""Tests for the Edlib-like banded BPM (repro.baselines.edlib_like)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.baselines import EdlibAligner

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestExactness:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_always_exact_via_doubling(self, pattern, text):
        """Edlib is an exact algorithm despite the band (k-doubling)."""
        result = EdlibAligner(word_size=8, initial_k=2).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    @pytest.mark.parametrize("word_size", [4, 8, 32, 64])
    def test_word_size_invariance(self, word_size, rng):
        pattern = random_dna(120, rng)
        text = mutate_dna(pattern, 25, rng)
        result = EdlibAligner(word_size=word_size).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)

    def test_high_divergence_still_exact(self, rng):
        pattern = random_dna(80, rng)
        text = pattern[::-1]
        result = EdlibAligner(word_size=8, initial_k=4).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)

    def test_unequal_lengths(self, rng):
        pattern = random_dna(30, rng)
        text = random_dna(150, rng)
        result = EdlibAligner(word_size=8).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()


class TestBandedCost:
    def test_band_cheaper_than_full_bpm_on_similar_pairs(self, rng):
        from repro.baselines import BpmAligner

        pattern = random_dna(1024, rng)
        text = mutate_dna(pattern, 10, rng)
        edlib = EdlibAligner(word_size=64).align(pattern, text, traceback=False)
        bpm = BpmAligner(word_size=64).align(pattern, text, traceback=False)
        assert edlib.score == bpm.score
        assert (
            edlib.stats.instructions["int_alu"]
            < bpm.stats.instructions["int_alu"]
        )

    def test_doubling_restarts_accumulate_cost(self, rng):
        """A tiny initial k forces restarts, which are all accounted."""
        pattern = random_dna(200, rng)
        text = mutate_dna(pattern, 60, rng)
        cheap_start = EdlibAligner(word_size=8, initial_k=128).align(
            pattern, text, traceback=False
        )
        forced_restarts = EdlibAligner(word_size=8, initial_k=2).align(
            pattern, text, traceback=False
        )
        assert forced_restarts.score == cheap_start.score
        assert (
            forced_restarts.stats.total_instructions
            > cheap_start.stats.total_instructions * 0.8
        )

    def test_word_size_validation(self):
        with pytest.raises(ValueError):
            EdlibAligner(word_size=1)


class TestBandExceededHierarchy:
    """Band overflow is one exported exception type across all banded kernels."""

    def test_shared_class_is_importable_everywhere(self):
        from repro.align import BandExceededError as from_align
        from repro.align.banded_gmx import BandExceededError as from_banded
        from repro.align.base import AlignerError, BandExceededError as from_base

        assert from_align is from_banded is from_base
        assert issubclass(from_base, AlignerError)
        assert issubclass(AlignerError, RuntimeError)

    def test_one_except_clause_catches_any_banded_kernel(self):
        # Retry policy -- a caller's, or the resilience engine's -- matches
        # band overflow with one `except AlignerError`, whichever kernel
        # raised it.
        from repro.align.base import AlignerError, BandExceededError

        def retried(exc: Exception) -> bool:
            try:
                raise exc
            except AlignerError:
                return True

        assert retried(BandExceededError("band 4 exceeded"))

    def test_edlib_band_doubling_recovers_from_overflow(self, rng):
        # Edlib's k-doubling consumes the shared exception internally: a
        # hopeless initial band still converges to the exact distance.
        pattern = random_dna(120, rng)
        text = mutate_dna(pattern, 50, rng)
        assert (
            EdlibAligner(initial_k=2).align(pattern, text).score
            == scalar_edit_distance(pattern, text)
        )
