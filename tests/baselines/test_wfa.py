"""Tests for the wavefront aligner (repro.baselines.wfa)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.baselines.wfa import WfaAligner

dna = st.text(alphabet="ACGT", min_size=1, max_size=45)


class TestCorrectness:
    @given(dna, dna)
    @settings(max_examples=120, deadline=None)
    def test_optimal_and_valid(self, pattern, text):
        result = WfaAligner().align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    def test_identical_sequences_cost_nothing_extra(self, rng):
        sequence = random_dna(500, rng)
        result = WfaAligner().align(sequence, sequence)
        assert result.score == 0
        assert result.stats.dp_cells == 0  # only the initial extension

    def test_distance_mode(self, rng):
        pattern = random_dna(200, rng)
        text = mutate_dna(pattern, 12, rng)
        aligner = WfaAligner()
        assert (
            aligner.align(pattern, text, traceback=False).score
            == aligner.align(pattern, text).score
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WfaAligner().align("", "A")


class TestScoreBoundedWork:
    def test_work_scales_with_divergence_not_length(self, rng):
        """WFA's defining property: cells ∝ s², independent of n·m."""
        aligner = WfaAligner()
        base = random_dna(400, rng)
        low = aligner.align(base, mutate_dna(base, 4, rng), traceback=False)
        high = aligner.align(base, mutate_dna(base, 40, rng), traceback=False)
        assert high.stats.dp_cells > 10 * max(1, low.stats.dp_cells)
        long_clean = random_dna(2_000, rng)
        clean = aligner.align(
            long_clean, mutate_dna(long_clean, 4, rng), traceback=False
        )
        # 5× the length at the same divergence: similar wavefront work.
        assert clean.stats.dp_cells < 4 * max(1, low.stats.dp_cells) + 100

    def test_wfa_beats_bpm_on_low_divergence(self, rng):
        """The modern-software claim: WFA does less work than BPM when
        sequences are similar."""
        from repro.baselines import BpmAligner

        pattern = random_dna(2_000, rng)
        text = mutate_dna(pattern, 10, rng)
        wfa = WfaAligner().align(pattern, text, traceback=False)
        bpm = BpmAligner().align(pattern, text, traceback=False)
        assert wfa.score == bpm.score
        assert wfa.stats.total_instructions < bpm.stats.total_instructions

    def test_traceback_memory_is_score_squared(self, rng):
        pattern = random_dna(800, rng)
        near = mutate_dna(pattern, 5, rng)
        far = mutate_dna(pattern, 60, rng)
        aligner = WfaAligner()
        small = aligner.align(pattern, near).stats.dp_bytes_peak
        large = aligner.align(pattern, far).stats.dp_bytes_peak
        assert large > 20 * small
