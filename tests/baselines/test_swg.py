"""Tests for gap-affine alignment (repro.baselines.swg)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AffineAligner,
    AffinePenalties,
    affine_score,
    affine_score_banded,
)
from repro.baselines.swg import INF

dna = st.text(alphabet="ACGT", min_size=1, max_size=25)


def reference_affine(pattern, text, pen):
    """Independent O(nm) Gotoh reference."""
    n, m = len(pattern), len(text)
    big = 1 << 20
    h = [[big] * (m + 1) for _ in range(n + 1)]
    e = [[big] * (m + 1) for _ in range(n + 1)]
    f = [[big] * (m + 1) for _ in range(n + 1)]
    h[0][0] = 0
    for j in range(1, m + 1):
        e[0][j] = pen.gap_open + j * pen.gap_extend
        h[0][j] = e[0][j]
    for i in range(1, n + 1):
        f[i][0] = pen.gap_open + i * pen.gap_extend
        h[i][0] = f[i][0]
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            e[i][j] = min(
                h[i][j - 1] + pen.gap_open + pen.gap_extend,
                e[i][j - 1] + pen.gap_extend,
            )
            f[i][j] = min(
                h[i - 1][j] + pen.gap_open + pen.gap_extend,
                f[i - 1][j] + pen.gap_extend,
            )
            sub = pen.match if pattern[i - 1] == text[j - 1] else pen.mismatch
            h[i][j] = min(h[i - 1][j - 1] + sub, e[i][j], f[i][j])
    return h[n][m]


class TestExactScore:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_antidiagonal_matches_reference(self, pattern, text):
        pen = AffinePenalties()
        assert affine_score(pattern, text, pen) == reference_affine(
            pattern, text, pen
        )

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_aligner_matches_score_and_alignment_is_optimal(self, pattern, text):
        pen = AffinePenalties()
        result = AffineAligner(pen).align(pattern, text)
        expected = reference_affine(pattern, text, pen)
        assert result.score == expected
        result.alignment.validate()
        assert result.alignment.affine_score(
            match=pen.match,
            mismatch=pen.mismatch,
            gap_open=pen.gap_open,
            gap_extend=pen.gap_extend,
        ) == expected

    def test_custom_penalties(self):
        pen = AffinePenalties(match=0, mismatch=2, gap_open=3, gap_extend=1)
        # AA vs AAA: one insertion: open 3 + extend 1 = 4 < mismatch paths
        assert affine_score("AA", "AAA", pen) == 4

    def test_identical_sequences_score_zero(self):
        assert affine_score("ACGTACGT", "ACGTACGT") == 0


class TestBandedScore:
    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_wide_band_equals_exact(self, pattern, text):
        pen = AffinePenalties()
        band = len(pattern) + len(text)
        assert affine_score_banded(pattern, text, band, pen) == affine_score(
            pattern, text, pen
        )

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_band_never_underestimates(self, pattern, text):
        pen = AffinePenalties()
        banded = affine_score_banded(pattern, text, 2, pen)
        assert banded >= affine_score(pattern, text, pen)

    def test_band_smaller_than_length_gap_disconnects(self):
        assert affine_score_banded("A", "AAAAAAAA", 2) == INF

    def test_zdrop_can_terminate_early(self):
        """A hopeless alignment trips the Z-drop cutoff."""
        score = affine_score_banded(
            "A" * 64, "T" * 64, band=64, zdrop=10
        )
        assert score == INF


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            affine_score("", "A")
        with pytest.raises(ValueError):
            AffineAligner().align("A", "")

    def test_gap_helper(self):
        pen = AffinePenalties()
        assert pen.gap(0) == 0
        assert pen.gap(3) == pen.gap_open + 3 * pen.gap_extend
