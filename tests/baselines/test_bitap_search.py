"""Tests for Bitap approximate search (repro.baselines.bitap.bitap_search)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scalar_edit_distance
from repro.baselines import bitap_search

dna_small = st.text(alphabet="ACGT", min_size=1, max_size=8)
dna_text = st.text(alphabet="ACGT", min_size=1, max_size=18)


def brute_force_best(pattern, text, end):
    """min over start of ed(pattern, text[start:end])."""
    return min(
        scalar_edit_distance(pattern, text[start:end])
        for start in range(end + 1)
    )


class TestAgainstBruteForce:
    @given(dna_small, dna_text, st.integers(min_value=0, max_value=3))
    @settings(max_examples=120, deadline=None)
    def test_hits_match_definition(self, pattern, text, k):
        hits = {hit.end: hit.errors for hit in bitap_search(pattern, text, k)}
        for end in range(1, len(text) + 1):
            best = brute_force_best(pattern, text, end)
            if best <= k:
                assert hits.get(end) == best
            else:
                assert end not in hits


class TestSemantics:
    def test_exact_occurrences(self):
        hits = bitap_search("ACG", "ACGTACG", 0)
        assert [hit.end for hit in hits] == [3, 7]
        assert all(hit.errors == 0 for hit in hits)

    def test_one_error_widens_hits(self):
        exact = bitap_search("ACGT", "ACGAACGT", 0)
        fuzzy = bitap_search("ACGT", "ACGAACGT", 1)
        assert len(fuzzy) > len(exact)

    def test_no_hits_on_disjoint_alphabets(self):
        assert bitap_search("AAAA", "TTTTTTTT", 2) == []

    def test_k_clamped_to_pattern_length(self):
        # k ≥ n means everything matches (delete the whole pattern).
        hits = bitap_search("AC", "TTTT", 5)
        assert len(hits) == 4

    def test_non_dna_alphabet(self):
        """GMX's selling point applies here too: any characters work."""
        hits = bitap_search("hello", "say helo world", 1)
        assert any(hit.errors == 1 for hit in hits)

    def test_validation(self):
        with pytest.raises(ValueError):
            bitap_search("", "A", 1)
        with pytest.raises(ValueError):
            bitap_search("A", "A", -1)
