"""Tests for the Bitap substrate (repro.baselines.bitap)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_dna, scalar_edit_distance
from repro.baselines import BitapAligner, bitap_global

dna = st.text(alphabet="ACGT", min_size=1, max_size=30)


class TestBitapGlobal:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_distance_with_generous_bound(self, pattern, text):
        run = bitap_global(pattern, text, k=len(pattern) + len(text))
        assert run.distance == scalar_edit_distance(pattern, text)

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_bound_semantics(self, pattern, text):
        """distance is reported iff it is ≤ k."""
        true_distance = scalar_edit_distance(pattern, text)
        if true_distance > 0:
            run = bitap_global(pattern, text, k=true_distance - 1)
            assert run.distance is None
        run = bitap_global(pattern, text, k=true_distance)
        assert run.distance == true_distance

    def test_history_recorded_on_request(self):
        run = bitap_global("ACG", "ACG", k=2, record=True)
        assert run.history is not None
        assert len(run.history) == 4  # m + 1 columns

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bitap_global("", "A", k=1)


class TestBitapAligner:
    @given(dna, dna)
    @settings(max_examples=80, deadline=None)
    def test_doubling_finds_exact_distance(self, pattern, text):
        result = BitapAligner(word_size=8).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    def test_cost_grows_with_error(self, rng):
        """Bitap's §3.1 weakness: cost scales with the error bound k."""
        pattern = random_dna(48, rng)
        aligner = BitapAligner()
        easy = aligner.align(pattern, pattern, traceback=False)
        hard = aligner.align(pattern, pattern[::-1], traceback=False)
        assert (
            hard.stats.instructions["int_alu"]
            > 2 * easy.stats.instructions["int_alu"]
        )

    def test_traceback_state_is_k_by_m_vectors(self, rng):
        """GenASM's burden: (k+1)·m stored vectors for the traceback."""
        pattern = random_dna(40, rng)
        result = BitapAligner().align(pattern, pattern[::-1])
        distance_only = BitapAligner().align(
            pattern, pattern[::-1], traceback=False
        )
        assert result.stats.dp_bytes_peak > 10 * distance_only.stats.dp_bytes_peak
