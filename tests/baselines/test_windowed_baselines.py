"""Tests for GenASM-CPU and Darwin GACT windowed baselines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.baselines import (
    DARWIN_OVERLAP,
    DARWIN_WINDOW,
    DarwinGactAligner,
    GENASM_OVERLAP,
    GENASM_WINDOW,
    GenasmCpuAligner,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestGenasmCpu:
    def test_paper_window_configuration(self):
        aligner = GenasmCpuAligner()
        assert (aligner.window, aligner.overlap) == (
            GENASM_WINDOW,
            GENASM_OVERLAP,
        ) == (96, 32)

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_valid_upper_bound(self, pattern, text):
        result = GenasmCpuAligner(window=16, overlap=8, word_size=8).align(
            pattern, text
        )
        result.alignment.validate()
        assert result.score >= scalar_edit_distance(pattern, text)

    def test_optimal_on_low_divergence(self, rng):
        hits = 0
        for _ in range(10):
            pattern = random_dna(250, rng)
            text = mutate_dna(pattern, 5, rng)
            result = GenasmCpuAligner().align(pattern, text)
            hits += result.score == scalar_edit_distance(pattern, text)
        assert hits >= 9

    def test_bitap_cost_inside_windows(self, rng):
        """GenASM-CPU work grows with window divergence (Bitap's k)."""
        pattern = random_dna(300, rng)
        similar = mutate_dna(pattern, 4, rng)
        noisy = mutate_dna(pattern, 60, rng)
        aligner = GenasmCpuAligner()
        cheap = aligner.align(pattern, similar)
        costly = aligner.align(pattern, noisy)
        assert (
            costly.stats.total_instructions
            > cheap.stats.total_instructions
        )


class TestDarwinGact:
    def test_paper_window_configuration(self):
        aligner = DarwinGactAligner()
        assert (aligner.window, aligner.overlap) == (
            DARWIN_WINDOW,
            DARWIN_OVERLAP,
        ) == (96, 32)

    @given(dna, dna)
    @settings(max_examples=25, deadline=None)
    def test_valid_alignment(self, pattern, text):
        result = DarwinGactAligner(window=16, overlap=8).align(pattern, text)
        result.alignment.validate()
        assert result.score >= scalar_edit_distance(pattern, text)

    def test_good_affine_alignments_on_low_divergence(self, rng):
        """GACT optimises the affine objective inside each window."""
        pattern = random_dna(250, rng)
        text = mutate_dna(pattern, 5, rng)
        result = DarwinGactAligner().align(pattern, text)
        # The stitched alignment must be near the optimal affine score.
        from repro.baselines import affine_score

        optimal = affine_score(pattern, text)
        assert result.alignment.affine_score() <= optimal * 1.5 + 20

    def test_constant_window_memory(self, rng):
        short = DarwinGactAligner().align(
            random_dna(150, rng), random_dna(150, rng)
        )
        long = DarwinGactAligner().align(
            random_dna(600, rng), random_dna(600, rng)
        )
        assert long.stats.dp_bytes_peak == short.stats.dp_bytes_peak
