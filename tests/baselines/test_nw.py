"""Tests for the classical DP baselines (repro.baselines.nw)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scalar_edit_distance
from repro.baselines import NeedlemanWunschAligner, SmithWatermanAligner

dna = st.text(alphabet="ACGT", min_size=1, max_size=50)


class TestNeedlemanWunsch:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_optimal_and_valid(self, pattern, text):
        result = NeedlemanWunschAligner().align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_distance_mode_agrees(self, pattern, text):
        aligner = NeedlemanWunschAligner()
        assert (
            aligner.align(pattern, text, traceback=False).score
            == aligner.align(pattern, text).score
        )

    def test_quadratic_footprint_with_traceback(self):
        result = NeedlemanWunschAligner().align("A" * 100, "C" * 100)
        assert result.stats.dp_bytes_peak == 4 * 101 * 101

    def test_linear_footprint_distance_only(self):
        result = NeedlemanWunschAligner().align(
            "A" * 100, "C" * 100, traceback=False
        )
        assert result.stats.dp_bytes_peak == 4 * 2 * 101

    def test_five_instructions_per_cell(self):
        """§4.2's accounting: 5 full-integer instructions per DP element."""
        result = NeedlemanWunschAligner().align(
            "ACGT" * 5, "TGCA" * 5, traceback=False
        )
        assert result.stats.instructions["int_alu"] == 5 * 20 * 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NeedlemanWunschAligner().align("", "A")


class TestSmithWaterman:
    def test_finds_embedded_common_segment(self):
        result = SmithWatermanAligner().align("TTTACGTACGTTT", "GGGACGTACGGGG")
        assert -result.score >= 7  # ACGTACG shared (7 bases)
        result.alignment.validate()

    def test_no_common_characters(self):
        result = SmithWatermanAligner().align("AAAA", "TTTT")
        assert result.score == 0
        assert result.alignment is None

    def test_local_score_never_positive_in_reported_convention(self):
        """Reported score is the negated local score (lower is better)."""
        result = SmithWatermanAligner().align("ACGT", "ACGT")
        assert result.score == -4

    def test_rejects_nonpositive_match(self):
        with pytest.raises(ValueError):
            SmithWatermanAligner(match=0)
