"""Tests for the Myers bit-parallel baseline (repro.baselines.bpm)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mutate_dna, random_dna, scalar_edit_distance
from repro.baselines import BpmAligner

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestCorrectness:
    @given(dna, dna)
    @settings(max_examples=100, deadline=None)
    def test_optimal_distance_and_valid_alignment(self, pattern, text):
        result = BpmAligner(word_size=8).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)
        result.alignment.validate()

    @pytest.mark.parametrize("word_size", [2, 7, 16, 64])
    def test_word_size_invariance(self, word_size, rng):
        """Multi-block carries must be exact at any block height."""
        pattern = random_dna(100, rng)
        text = mutate_dna(pattern, 20, rng)
        result = BpmAligner(word_size=word_size).align(pattern, text)
        assert result.score == scalar_edit_distance(pattern, text)

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_distance_mode_agrees(self, pattern, text):
        aligner = BpmAligner(word_size=16)
        assert (
            aligner.align(pattern, text, traceback=False).score
            == aligner.align(pattern, text).score
        )


class TestCostAccounting:
    def test_17_instructions_per_block_column(self, rng):
        """§2.3: classical BPM costs 17 instructions per column step."""
        pattern = random_dna(64, rng)
        text = random_dna(50, rng)
        result = BpmAligner(word_size=64).align(pattern, text, traceback=False)
        assert result.stats.instructions["int_alu"] == 17 * 50

    def test_four_nm_bits_stored_with_traceback(self, rng):
        """§3.1: BPM stores 4·n·m bits of difference masks."""
        pattern = random_dna(128, rng)
        text = random_dna(100, rng)
        result = BpmAligner(word_size=64).align(pattern, text)
        assert result.stats.dp_bytes_peak == 4 * 8 * 2 * 100  # 4 words × blocks × m

    def test_distance_mode_footprint_is_one_column(self, rng):
        pattern = random_dna(128, rng)
        text = random_dna(100, rng)
        result = BpmAligner(word_size=64).align(pattern, text, traceback=False)
        assert result.stats.dp_bytes_peak == 2 * 8 * 2

    def test_error_insensitive_cost(self, rng):
        """BPM cost depends on n·m only, never on the divergence (§2.3)."""
        pattern = random_dna(64, rng)
        aligner = BpmAligner()
        identical = aligner.align(pattern, pattern, traceback=False)
        divergent = aligner.align(pattern, random_dna(64, rng), traceback=False)
        assert (
            identical.stats.instructions["int_alu"]
            == divergent.stats.instructions["int_alu"]
        )

    def test_word_size_validation(self):
        with pytest.raises(ValueError):
            BpmAligner(word_size=1)
