"""Setup shim: enables legacy editable installs in offline environments
(where PEP 660 editable wheels are unavailable because the `wheel` package
is not installed).  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
