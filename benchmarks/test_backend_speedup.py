"""Backend speedup gate + the BENCH trajectory snapshot.

Measures the pure reference loop against the bit-parallel backend on the
standard Illumina profile (150 bp, 0.5 % error) and enforces the headline
claim of the backend layer: **distance-only bitpar is at least 3x faster
than pure**.  Traceback-mode numbers are recorded for the trajectory but
not gated — the ``gmx.tb`` tile recomputation dominates that path and the
bitvector engine only accelerates the distance sweep in front of it.

The measured run also writes the repo's first performance trajectory
snapshot, ``BENCH_backends.json``: per-backend wall/GCUPS, speedups, and
the per-span ``diff_profiles`` delta between the pure and bitpar hot
paths (captured live via the observability profiler).  The file is
rewritten only when missing or when the benchmark *configuration* block
changed — re-measuring on a different machine never dirties the
checkout, but changing the workload or gate makes ``git diff
--exit-code BENCH_backends.json`` fail in CI until the new snapshot is
committed alongside the change.
"""

import json
import time
from pathlib import Path

import pytest

from repro.align import FullGmxAligner
from repro.align.backends import backend_names
from repro.obs import runtime as obs
from repro.obs.profiler import build_profile, diff_profiles
from repro.workloads import illumina_like

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

#: The benchmark's identity: changing anything here stales the snapshot.
CONFIG = {
    "schema": 1,
    "workload": "illumina-150bp-0.5%",
    "pairs": 40,
    "seed": 23,
    "tile_size": 8,
    "repeats": 3,
    "speedup_floor": 3.0,
    "gated_on": "distance-only (traceback recorded, not gated)",
}


def _measure(backend, *, traceback):
    """Best-of-N wall time + profile for one backend/mode combination."""
    pairs = list(illumina_like(count=CONFIG["pairs"], seed=CONFIG["seed"]))
    aligner = FullGmxAligner(tile_size=CONFIG["tile_size"], backend=backend)
    best_wall = None
    best_profile = None
    cells = 0
    for _ in range(CONFIG["repeats"]):
        with obs.capture() as (recorder, _registry):
            start = time.perf_counter()
            cells = 0
            for pair in pairs:
                result = aligner.align(
                    pair.pattern, pair.text, traceback=traceback
                )
                cells += result.stats.dp_cells
            wall = time.perf_counter() - start
            spans = list(recorder.spans)
        if best_wall is None or wall < best_wall:
            best_wall = wall
            mode = "distance" if not traceback else "traceback"
            best_profile = build_profile(
                spans,
                wall_ns=int(wall * 1e9),
                label=f"{backend}-{mode}",
            )
    return {"wall_seconds": best_wall, "dp_cells": cells}, best_profile


def _gcups(entry):
    return entry["dp_cells"] / entry["wall_seconds"] / 1e9


@pytest.mark.skipif(
    "bitpar" not in backend_names(), reason="bitpar backend unavailable"
)
def test_bitpar_speedup_and_snapshot():
    # -- measure ---------------------------------------------------------
    distance = {}
    profiles = {}
    for backend in backend_names():
        distance[backend], profiles[backend] = _measure(
            backend, traceback=False
        )
    tb = {
        backend: _measure(backend, traceback=True)[0]
        for backend in ("pure", "bitpar")
    }

    # Identical work: every backend must have swept the same DP area.
    assert len({entry["dp_cells"] for entry in distance.values()}) == 1

    # -- the gate --------------------------------------------------------
    speedup = (
        distance["pure"]["wall_seconds"] / distance["bitpar"]["wall_seconds"]
    )
    assert speedup >= CONFIG["speedup_floor"], (
        f"bitpar distance-only speedup {speedup:.2f}x is below the "
        f"{CONFIG['speedup_floor']}x floor "
        f"(pure {distance['pure']['wall_seconds']:.3f}s, "
        f"bitpar {distance['bitpar']['wall_seconds']:.3f}s)"
    )

    # -- the trajectory snapshot ----------------------------------------
    deltas = diff_profiles(profiles["pure"], profiles["bitpar"])
    snapshot = {
        "config": CONFIG,
        "distance_only": {
            backend: {
                "wall_seconds": round(entry["wall_seconds"], 4),
                "gcups": round(_gcups(entry), 5),
                "speedup_vs_pure": round(
                    distance["pure"]["wall_seconds"] / entry["wall_seconds"],
                    2,
                ),
            }
            for backend, entry in distance.items()
        },
        "traceback": {
            backend: {
                "wall_seconds": round(entry["wall_seconds"], 4),
                "gcups": round(_gcups(entry), 5),
                "speedup_vs_pure": round(
                    tb["pure"]["wall_seconds"] / entry["wall_seconds"], 2
                ),
            }
            for backend, entry in tb.items()
        },
        "diff_profiles": [
            {
                "span": delta.name,
                "pure_ms": round(delta.before_ns / 1e6, 3),
                "bitpar_ms": round(delta.after_ns / 1e6, 3),
                "pure_count": delta.before_count,
                "bitpar_count": delta.after_count,
            }
            for delta in deltas[:10]
        ],
    }

    existing = None
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            existing = None
    if existing is None or existing.get("config") != CONFIG:
        BENCH_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    # Whatever was (or now is) on disk must describe this configuration —
    # the currency contract CI enforces with `git diff --exit-code`.
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["config"] == CONFIG
    assert on_disk["distance_only"]["bitpar"]["speedup_vs_pure"] >= (
        CONFIG["speedup_floor"]
    )
