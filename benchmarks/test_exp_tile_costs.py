"""§4.2 per-tile cost comparison across algorithmic strategies.

Paper: a T×T tile costs 5T² full-integer instructions (DP), 7T³ bit ops
(Bitap), 17T² (BPM) or 12T² (GMX-Tile); storage is 32T²/T³/4T²/4T bits.
"""

from repro.eval import tile_cost_table
from repro.eval.reporting import render_table


def test_exp_tile_costs(benchmark, save_table):
    rows = benchmark(tile_cost_table)
    save_table(
        "exp_tile_costs",
        render_table(rows, title="§4.2 — per-tile operation/storage costs (T=32)"),
    )
    by_algo = {row["algorithm"]: row for row in rows}
    assert by_algo["GMX-Tile"]["ops_per_tile"] < by_algo["BPM"]["ops_per_tile"]
    # T× storage reduction: 4T bits (GMX edges) vs 4T² bits (BPM), T = 32.
    assert by_algo["GMX-Tile"]["bits_per_tile"] * 32 == by_algo["BPM"]["bits_per_tile"]
    assert by_algo["Bitap"]["ops_per_tile"] > by_algo["BPM"]["ops_per_tile"]
