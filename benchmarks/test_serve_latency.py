"""Serving latency gate + the BENCH_serve trajectory snapshot.

Boots the real HTTP alignment service (warm worker pool, coalescer,
content-addressed cache), drives a seeded mixed hit/miss load at it,
and enforces the headline claim of the serving layer: **the warm
resident pool serves a fresh pair at least 5x faster at p50 than
spinning a worker pool per request**.  A per-request pool inside a
multi-threaded server must ``spawn`` (forking with live handler
threads is unsafe), so the cold baseline pays interpreter+import start
on every request — exactly the cost the warm pool amortises.

The measured run writes ``BENCH_serve.json``: latency percentiles,
throughput, cache hit rate, and the warm-vs-cold comparison.  The file
is rewritten only when missing or when the ``CONFIG`` identity block
changed — re-measuring on a different machine never dirties the
checkout, but changing the workload or the gate makes ``git diff
--exit-code BENCH_serve.json`` fail in CI until the new snapshot is
committed alongside the change.
"""

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.serve.bench import run_serve_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The benchmark's identity: changing anything here stales the snapshot.
CONFIG = {
    "schema": 1,
    "workload": "serve-150bp-5%",
    "requests": 240,
    "clients": 8,
    "unique_pairs": 32,
    "length": 150,
    "error_rate": 0.05,
    "seed": 23,
    "workers": 2,
    "warm_cold_probes": 5,
    "warm_speedup_floor": 5.0,
    "gated_on": "warm resident pool p50 vs per-request spawn pool p50",
}


@pytest.mark.skipif(
    not multiprocessing.get_all_start_methods(),
    reason="no multiprocessing start method available",
)
def test_serve_latency_and_snapshot():
    # -- measure ---------------------------------------------------------
    report = run_serve_bench(
        requests=CONFIG["requests"],
        clients=CONFIG["clients"],
        unique_pairs=CONFIG["unique_pairs"],
        length=CONFIG["length"],
        error_rate=CONFIG["error_rate"],
        seed=CONFIG["seed"],
        workers=CONFIG["workers"],
        warm_cold_probes=CONFIG["warm_cold_probes"],
    )
    data = report.to_dict()

    # The load itself must have been clean: every request answered, the
    # schedule's guaranteed repeats observed as cache hits, and the pool
    # fully torn down afterwards.
    assert report.errors == 0
    assert len(report.latencies_ns) == CONFIG["requests"]
    assert report.cache["hits"] > 0
    assert report.leaked_workers == 0

    # -- the gate --------------------------------------------------------
    speedup = report.warm_speedup
    assert speedup is not None, "warm/cold probes did not run"
    assert speedup >= CONFIG["warm_speedup_floor"], (
        f"warm-pool p50 speedup {speedup:.2f}x is below the "
        f"{CONFIG['warm_speedup_floor']}x floor "
        f"(warm {data['warm_vs_cold']['warm_p50_ms']} ms, "
        f"cold {data['warm_vs_cold']['cold_p50_ms']} ms)"
    )

    # -- the trajectory snapshot ----------------------------------------
    snapshot = {
        "config": CONFIG,
        "throughput_rps": data["throughput_rps"],
        "latency": data["latency"],
        "warm_vs_cold": data["warm_vs_cold"],
        "cache": data["cache"],
        "pool": data["pool"],
        "requests_accounting": data["requests_accounting"],
        "leaked_workers": data["leaked_workers"],
    }

    existing = None
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            existing = None
    if existing is None or existing.get("config") != CONFIG:
        BENCH_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    # Whatever was (or now is) on disk must describe this configuration —
    # the currency contract CI enforces with `git diff --exit-code`.
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["config"] == CONFIG
    assert on_disk["warm_vs_cold"]["speedup"] >= (
        CONFIG["warm_speedup_floor"]
    )
