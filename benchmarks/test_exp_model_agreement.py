"""Extension: detailed-vs-analytic model agreement artifact.

The figure pipeline trusts the fast analytic timing path; this bench
produces the evidence table — per kernel and system, cycles from the
micro-op pipeline + cache replay versus the closed-form model — so the
agreement that `tests/sim/test_system.py` asserts is also visible as a
regenerated artifact.
"""

from repro.eval.reporting import render_table
from repro.sim.core_model import estimate_kernel
from repro.sim.cost_model import expected_distance, predict_bpm, predict_full_gmx
from repro.sim.soc import GEM5_INORDER, GEM5_OOO
from repro.sim.system import simulate_kernel_detailed

POINTS = ((512, 0.15), (1_024, 0.15))
KERNELS = (("full-gmx", predict_full_gmx), ("bpm", predict_bpm))
SYSTEMS = (GEM5_INORDER, GEM5_OOO)


def sweep():
    rows = []
    for length, error in POINTS:
        distance = expected_distance(length, error)
        for kernel, predictor in KERNELS:
            stats = predictor(
                length, length, traceback=True, distance=distance
            )
            for system in SYSTEMS:
                detailed = simulate_kernel_detailed(
                    kernel, length, length, system
                )
                analytic = estimate_kernel(stats, system.core, system.memory)
                rows.append(
                    {
                        "kernel": kernel,
                        "length": length,
                        "system": system.name,
                        "detailed_cycles": int(detailed.cycles),
                        "analytic_cycles": int(analytic.cycles),
                        "ratio": detailed.cycles / analytic.cycles,
                    }
                )
    return rows


def test_exp_model_agreement(benchmark, save_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "exp_model_agreement",
        render_table(
            rows, title="Extension — detailed vs analytic timing agreement"
        ),
    )
    for row in rows:
        assert 0.3 < row["ratio"] < 3.0, row
