"""Figure 15: throughput per PE — GMX core vs GenASM vault vs Darwin GACT.

Paper (§7.4, W = 96, O = 32): GMX performs 1.3–1.9× better than GenASM and
7.2–16.2× better than Darwin per PE, with throughput/area 0.35–0.52× the
DSAs while adding only 0.0216 mm² to an existing core.
"""

from repro.eval import figure15
from repro.eval.reporting import render_table


def test_fig15_dsa_comparison(benchmark, save_table):
    rows = benchmark(figure15)
    save_table(
        "fig15_dsa_comparison",
        render_table(
            rows,
            title="Figure 15 — per-PE throughput vs DSAs (modelled)",
        ),
    )
    ratios_genasm = [row["gmx_vs_genasm"] for row in rows]
    ratios_darwin = [row["gmx_vs_darwin"] for row in rows]
    tpa = [row["gmx_tpa_vs_genasm"] for row in rows]
    benchmark.extra_info["gmx_vs_genasm"] = sum(ratios_genasm) / len(rows)
    benchmark.extra_info["gmx_vs_darwin"] = sum(ratios_darwin) / len(rows)
    # Paper bands (with model slack).
    assert all(1.0 < r < 3.0 for r in ratios_genasm)
    assert all(5.0 < r < 25.0 for r in ratios_darwin)
    assert all(0.25 < r < 0.7 for r in tpa)
