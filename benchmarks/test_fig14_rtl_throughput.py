"""Figure 14: RTL-InOrder (Sargantana SoC) throughput.

Paper: rankings match the gem5-InOrder results, but the edge SoC's small
hierarchy strangles Full(BPM) (memory-bandwidth limited), so Full(GMX)'s
relative improvement grows (45.2× average, 1.5× more than on gem5).
"""

from repro.eval import figure14, speedup_summary
from repro.eval.reporting import render_table


def test_fig14_rtl_throughput(benchmark, save_table):
    rows = benchmark(figure14)
    summary = speedup_summary(rows)
    save_table(
        "fig14_rtl_throughput",
        render_table(
            rows,
            columns=["dataset", "aligner", "alignments_per_second"],
            title="Figure 14 — RTL-InOrder throughput (modelled)",
        )
        + "\n\n"
        + render_table(summary, title="Per-family geomean GMX speedups (RTL)"),
    )
    by_family = {
        (row["family"], row["kind"]): row["geomean_speedup"] for row in summary
    }
    benchmark.extra_info["gmx_vs_bpm_long_rtl"] = by_family[
        ("Full(GMX) vs Full(BPM)", "long")
    ]
    # §7.3: the BPM gap widens on the edge SoC vs gem5-InOrder.
    from repro.eval import figure10

    gem5 = {
        (row["family"], row["kind"]): row["geomean_speedup"]
        for row in speedup_summary(figure10())
    }
    assert (
        by_family[("Full(GMX) vs Full(BPM)", "long")]
        > gem5[("Full(GMX) vs Full(BPM)", "long")]
    )
