"""Ablation: aligner behaviour across sequencing-technology error profiles.

The paper's datasets use a flat error mix; real platforms differ in
structure (Illumina = substitutions, ONT = bursty indels).  This bench
runs the GMX aligners functionally on profiled reads and reports cost and
heuristic accuracy per technology — indel bursts are what stress the
windowed overlap.
"""

import random

from repro.align import BandedGmxAligner, WindowedGmxAligner
from repro.eval.reporting import render_table
from repro.workloads.profiles import PROFILES, generate_profiled_pair

LENGTH = 700
PAIRS = 5


def sweep():
    rows = []
    for name, profile in sorted(PROFILES.items()):
        rng = random.Random(99)
        banded = BandedGmxAligner()
        windowed = WindowedGmxAligner()
        banded_tiles = 0
        exact_total = 0
        windowed_total = 0
        for _ in range(PAIRS):
            pair = generate_profiled_pair(LENGTH, profile, rng)
            banded_result = banded.align(pair.pattern, pair.text)
            assert banded_result.exact
            windowed_result = windowed.align(pair.pattern, pair.text)
            windowed_result.alignment.validate()
            banded_tiles += banded_result.stats.tiles
            exact_total += banded_result.score
            windowed_total += windowed_result.score
        rows.append(
            {
                "profile": name,
                "error_rate": profile.error_rate,
                "mean_distance": exact_total / PAIRS,
                "banded_tiles_per_pair": banded_tiles // PAIRS,
                "windowed_inflation": (
                    windowed_total / exact_total if exact_total else 1.0
                ),
            }
        )
    return rows


def test_abl_error_profiles(benchmark, save_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "abl_error_profiles",
        render_table(
            rows, title="Ablation — technology error profiles (700 bp)"
        ),
    )
    by_profile = {row["profile"]: row for row in rows}
    # Banded work scales with divergence: ONT needs the widest bands.
    assert (
        by_profile["ont"]["banded_tiles_per_pair"]
        > by_profile["illumina"]["banded_tiles_per_pair"]
    )
    # The windowed heuristic stays near-optimal even on bursty indels.
    assert by_profile["ont"]["windowed_inflation"] < 1.15
    assert by_profile["illumina"]["windowed_inflation"] <= 1.01
