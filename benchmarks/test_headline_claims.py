"""Capstone: the paper's abstract/key-results claims in one artifact.

Abstract: "speed-ups from 25–265× scaling to megabyte-long sequences ...
a single GMX-enabled core achieves a throughput per area between
0.35–0.52× that of state-of-the-art DSAs ... 16× memory footprint
reduction ... 1.7 % of the overall area while consuming just 8.47 mW."

This bench regenerates each quantity from the models and writes the
side-by-side table; detailed per-figure assessments live in EXPERIMENTS.md.
"""

from repro.eval import (
    figure10,
    figure15,
    memory_footprint_rows,
    speedup_summary,
)
from repro.eval.reporting import render_table
from repro.hw.floorplan import soc_report


def collect():
    rows = []
    summary = speedup_summary(figure10())
    speedups = [row["geomean_speedup"] for row in summary]
    rows.append(
        {
            "claim": "GMX speedups over software (family geomeans)",
            "paper": "25–265x (headline); 18–13253x (per family)",
            "measured": f"{min(speedups):.0f}–{max(speedups):.0f}x",
        }
    )
    fig15 = figure15()
    tpa = [row["gmx_tpa_vs_genasm"] for row in fig15]
    rows.append(
        {
            "claim": "throughput/area vs state-of-the-art DSAs",
            "paper": "0.35–0.52x",
            "measured": f"{min(tpa):.2f}–{max(tpa):.2f}x",
        }
    )
    footprint = {row["algorithm"]: row for row in memory_footprint_rows()}
    rows.append(
        {
            "claim": "DP memory footprint vs BPM (10 kbp)",
            "paper": "16x reduction",
            "measured": f"{footprint['GMX (T=32)']['reduction_vs_bpm']:.1f}x",
        }
    )
    report = soc_report(32)
    rows.append(
        {
            "claim": "GMX silicon cost",
            "paper": "0.0216 mm2 (1.7%), 8.47 mW",
            "measured": (
                f"{report.gmx_area:.4f} mm2 "
                f"({report.gmx_area_fraction:.1%}), "
                f"{report.gmx_power:.2f} mW"
            ),
        }
    )
    genasm_ratio = [row["gmx_vs_genasm"] for row in fig15]
    darwin_ratio = [row["gmx_vs_darwin"] for row in fig15]
    rows.append(
        {
            "claim": "per-PE throughput vs GenASM / Darwin",
            "paper": "1.3–1.9x / 7.2–16.2x",
            "measured": (
                f"{min(genasm_ratio):.2f}x / {min(darwin_ratio):.1f}x"
            ),
        }
    )
    return rows


def test_headline_claims(benchmark, save_table):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    save_table(
        "headline_claims",
        render_table(
            rows,
            columns=["claim", "paper", "measured"],
            title="Key results — paper vs this reproduction",
        ),
    )
    by_claim = {row["claim"]: row for row in rows}
    assert by_claim["DP memory footprint vs BPM (10 kbp)"]["measured"].startswith(
        "16.0"
    )
    assert "0.0216" in by_claim["GMX silicon cost"]["measured"]
    assert "8.47" in by_claim["GMX silicon cost"]["measured"]
