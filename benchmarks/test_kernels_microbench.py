"""Wall-clock microbenchmarks of the functional kernels themselves.

Unlike the figure benches (which report *modelled* cycles), these time the
actual Python kernels via pytest-benchmark — useful for tracking this
library's own performance across changes.
"""

import random

import pytest

from repro.align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
from repro.baselines import BpmAligner, EdlibAligner
from repro.core.tile import boundary_deltas, build_peq, compute_tile
from repro.workloads.generator import generate_pair


@pytest.fixture(scope="module")
def pair_1k():
    return generate_pair(1_000, 0.10, random.Random(7))


@pytest.fixture(scope="module")
def chunk_pair():
    rng = random.Random(8)
    pattern = "".join(rng.choice("ACGT") for _ in range(32))
    text = "".join(rng.choice("ACGT") for _ in range(32))
    return pattern, text


def test_bench_tile_kernel(benchmark, chunk_pair):
    pattern, text = chunk_pair
    peq = build_peq(pattern)
    dv = boundary_deltas(32)
    dh = boundary_deltas(32)
    benchmark(compute_tile, pattern, text, dv, dh, tile_size=32, peq=peq)


def test_bench_full_gmx_1k(benchmark, pair_1k):
    aligner = FullGmxAligner()
    result = benchmark.pedantic(
        aligner.align, args=(pair_1k.pattern, pair_1k.text), rounds=2,
        iterations=1,
    )
    assert result.exact


def test_bench_banded_gmx_1k(benchmark, pair_1k):
    aligner = BandedGmxAligner()
    result = benchmark.pedantic(
        aligner.align, args=(pair_1k.pattern, pair_1k.text), rounds=2,
        iterations=1,
    )
    assert result.exact


def test_bench_windowed_gmx_1k(benchmark, pair_1k):
    aligner = WindowedGmxAligner()
    result = benchmark.pedantic(
        aligner.align, args=(pair_1k.pattern, pair_1k.text), rounds=2,
        iterations=1,
    )
    result.alignment.validate()


def test_bench_bpm_1k(benchmark, pair_1k):
    aligner = BpmAligner()
    result = benchmark.pedantic(
        aligner.align,
        args=(pair_1k.pattern, pair_1k.text),
        kwargs={"traceback": False},
        rounds=2,
        iterations=1,
    )
    assert result.exact


def test_bench_edlib_1k(benchmark, pair_1k):
    aligner = EdlibAligner()
    result = benchmark.pedantic(
        aligner.align, args=(pair_1k.pattern, pair_1k.text), rounds=2,
        iterations=1,
    )
    assert result.exact
