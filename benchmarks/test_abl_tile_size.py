"""Ablation: GMX tile-size sweep (DESIGN.md §5, paper §6.3).

Sweeps T ∈ {4, 8, 16, 32, 64} over the same workload and reports the
instruction count, DP footprint, and hardware design point per T: the
quadratic instruction reduction and linear latency growth that justify the
paper's T = 32 choice for 64-bit registers.
"""

from repro.eval.reporting import render_table
from repro.hw.frequency import design_point
from repro.sim.cost_model import expected_distance, predict_full_gmx

TILE_SIZES = (4, 8, 16, 32, 64)
LENGTH = 5_000
ERROR = 0.15


def sweep():
    distance = expected_distance(LENGTH, ERROR)
    rows = []
    for tile_size in TILE_SIZES:
        stats = predict_full_gmx(
            LENGTH, LENGTH, traceback=True, distance=distance,
            tile_size=tile_size,
        )
        point = design_point(tile_size)
        rows.append(
            {
                "tile_size": tile_size,
                "instructions": stats.total_instructions,
                "gmx_ops": stats.instructions["gmx"],
                "dp_footprint_kb": stats.dp_bytes_peak / 1024,
                "ac_latency_cycles": point.ac_stages,
                "tb_latency_cycles": point.tb_stages,
                "area_mm2": point.area_mm2,
                "peak_gcups": point.peak_gcups,
            }
        )
    return rows


def test_abl_tile_size(benchmark, save_table):
    rows = benchmark(sweep)
    save_table(
        "abl_tile_size",
        render_table(rows, title="Ablation — GMX tile-size sweep (5 kbp @ 15 %)"),
    )
    by_t = {row["tile_size"]: row for row in rows}
    # Quadratic instruction reduction with T...
    assert by_t[8]["gmx_ops"] / by_t[32]["gmx_ops"] > 12
    # ...but only linear latency growth (§6.3).
    assert by_t[64]["ac_latency_cycles"] <= 3 * by_t[32]["ac_latency_cycles"]
    # And a T× footprint reduction.
    assert by_t[8]["dp_footprint_kb"] > 3 * by_t[32]["dp_footprint_kb"]
