"""Figure 12: 16-core scaling (top) and DDR4 bandwidth demand (bottom).

Paper: all implementations scale linearly except Full(BPM) — whose DP
matrices overflow the caches past ~10 kbp and saturate the two DDR4
controllers (>65 % of the 47.8 GB/s peak) — and Windowed(GMX), whose tiny
per-character compute raises contention.
"""

from repro.eval import figure12
from repro.eval.reporting import render_table


def test_fig12_multicore(benchmark, save_table):
    results = benchmark(figure12)
    save_table(
        "fig12_multicore",
        render_table(
            results["scaling"],
            columns=["aligner", "length", "threads", "speedup"],
            title="Figure 12 (top) — 16-core scaling (modelled)",
        )
        + "\n\n"
        + render_table(
            results["bandwidth"],
            columns=["aligner", "length", "bandwidth_gbs", "utilization"],
            title="Figure 12 (bottom) — DDR4 bandwidth at 16 threads",
        ),
    )
    at16 = {
        (row["aligner"], row["length"]): row["speedup"]
        for row in results["scaling"]
        if row["threads"] == 16
    }
    benchmark.extra_info["bpm_10k_speedup"] = at16[("Full(BPM)", 10_000)]
    benchmark.extra_info["gmx_10k_speedup"] = at16[("Full(GMX)", 10_000)]
    assert at16[("Full(BPM)", 10_000)] < at16[("Full(GMX)", 10_000)] / 1.5
