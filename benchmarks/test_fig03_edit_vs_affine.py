"""Figure 3: speed vs accuracy — edit distance against gap-affine.

Paper: on high-quality data (Illumina WGS, PacBio HiFi), edit-distance
alignment (Edlib) reports essentially the same alignments as the optimal
gap-affine model while being far faster, even against banded KSW2.

This bench runs *functionally*: real Edlib-like alignments, their real
gap-affine penalty versus the exact KSW2 optimum.  The HiFi profile is
scaled to 1.5 kbp (see DESIGN.md — the exact O(n·m) affine comparator is
the limit; the trade-off's shape is length-stable).
"""

from repro.eval import figure3
from repro.eval.reporting import render_table


def test_fig03_edit_vs_affine(benchmark, save_table):
    rows = benchmark.pedantic(
        lambda: figure3(hifi_length=1_500, pairs=8),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig03_edit_vs_affine",
        render_table(
            rows,
            columns=[
                "dataset",
                "method",
                "alignments_per_second",
                "mean_affine_deviation",
            ],
            title="Figure 3 — edit vs gap-affine speed/accuracy",
        ),
    )
    by_key = {(row["dataset"], row["method"]): row for row in rows}
    for dataset in {row["dataset"] for row in rows}:
        edit = by_key[(dataset, "Edlib (edit)")]
        exact = by_key[(dataset, "KSW2 (gap-affine)")]
        # Edit distance: much faster, near-zero accuracy loss.
        assert edit["alignments_per_second"] > exact["alignments_per_second"]
        assert edit["mean_affine_deviation"] < 15
