"""Streaming memory gate + the BENCH_stream trajectory snapshot.

Runs the chunked streaming pipeline over lazily generated reference
blocks (the reference is never materialised) at a 1x and a 4x scale and
enforces the headline claim of the streaming layer: **peak memory is
O(chunk + query), independent of reference length**.  A pipeline that
buffered the reference would show a ~4x peak on the scaled run; the gate
requires the scaled peak to stay within ``peak_ratio_ceiling`` of the
baseline.

The measured run writes ``BENCH_stream.json``: tracemalloc peaks at both
scales, the peak ratio, scan throughput, and the alignment outcome.  The
file is rewritten only when missing or when the ``CONFIG`` identity
block changed — re-measuring on a different machine never dirties the
checkout, but changing the workload or the gate makes ``git diff
--exit-code BENCH_stream.json`` fail in CI until the new snapshot is
committed alongside the change.
"""

import gc
import json
import random
import time
import tracemalloc
from pathlib import Path

from repro.stream import StreamConfig, stream_align
from repro.workloads.generator import mutate, random_sequence

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

#: The benchmark's identity: changing anything here stales the snapshot.
CONFIG = {
    "schema": 1,
    "workload": "stream-planted-locus-far-end",
    "chunk_size": 1024,
    "overlap": 192,
    "query_length": 800,
    "locus_error_rate": 0.015,
    "left_flank": 100_000,
    "right_flank": 2_000,
    "scale": 4,
    "block_size": 4096,
    "seed": 0xFEED,
    "peak_ratio_ceiling": 1.5,
    "gated_on": "4x-reference tracemalloc peak vs 1x baseline",
}

STREAM_CONFIG = StreamConfig(
    chunk_size=CONFIG["chunk_size"], overlap=CONFIG["overlap"]
)


def reference_blocks(left_flank: int, locus: str):
    """Lazily generated flank + locus + flank blocks, never joined.

    The locus sits at the *far* end of the reference so the scan cannot
    stop early — both runs traverse their whole reference.
    """
    rng = random.Random(CONFIG["seed"])
    block_size = CONFIG["block_size"]

    def flank(length: int):
        for lo in range(0, length, block_size):
            yield random_sequence(min(block_size, length - lo), rng)

    yield from flank(left_flank)
    for lo in range(0, len(locus), block_size):
        yield locus[lo:lo + block_size]
    yield from flank(CONFIG["right_flank"])


def measure(left_flank: int, query: str, locus: str) -> dict:
    """One streamed run under tracemalloc; peak bytes + throughput."""
    blocks = reference_blocks(left_flank, locus)
    gc.collect()
    tracemalloc.start()
    started = time.perf_counter()
    try:
        result = stream_align(blocks, query, config=STREAM_CONFIG)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    elapsed = time.perf_counter() - started
    # The run itself must have been clean: the planted locus found with
    # a near-optimal score after scanning the entire reference.
    assert result.score <= round(
        CONFIG["locus_error_rate"] * CONFIG["query_length"]
    )
    assert result.reference_length >= left_flank
    return {
        "reference_length": result.reference_length,
        "peak_bytes": peak,
        "seconds": round(elapsed, 4),
        "scan_bases_per_second": round(result.reference_length / elapsed),
        "score": result.score,
        "chunks": result.counters.chunks,
        "chunks_aligned": result.counters.jobs,
    }


def test_stream_memory_and_snapshot():
    # -- measure ---------------------------------------------------------
    rng = random.Random(CONFIG["seed"] + 1)
    query = random_sequence(CONFIG["query_length"], rng)
    locus = mutate(query, CONFIG["locus_error_rate"], rng)
    base = measure(CONFIG["left_flank"], query, locus)
    scaled = measure(CONFIG["scale"] * CONFIG["left_flank"], query, locus)
    ratio = scaled["peak_bytes"] / base["peak_bytes"]

    # -- the gate --------------------------------------------------------
    assert ratio < CONFIG["peak_ratio_ceiling"], (
        f"peak memory scaled with reference length: "
        f"{base['peak_bytes']} -> {scaled['peak_bytes']} bytes "
        f"({ratio:.2f}x) for a {CONFIG['scale']}x reference"
    )

    # -- the trajectory snapshot ----------------------------------------
    snapshot = {
        "config": CONFIG,
        "base": base,
        "scaled": scaled,
        "peak_ratio": round(ratio, 3),
    }

    existing = None
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            existing = None
    if existing is None or existing.get("config") != CONFIG:
        BENCH_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    # Whatever was (or now is) on disk must describe this configuration —
    # the currency contract CI enforces with `git diff --exit-code`.
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["config"] == CONFIG
    assert on_disk["peak_ratio"] < CONFIG["peak_ratio_ceiling"]
