"""§7.3 scalability: 1 Mbp pairs at 15 % error on the RTL SoC.

Paper: Banded(GMX) reaches 20 alignments/s and Windowed(GMX) 374, 1.58×
the GenASM accelerator; Full(GMX) is excluded because it would need over
10 GB of memory on the 1 GB SoC.
"""

from repro.eval import scalability_1mbp
from repro.eval.reporting import render_table


def test_exp_1mbp_scalability(benchmark, save_table):
    rows = benchmark(scalability_1mbp)
    save_table(
        "exp_1mbp_scalability",
        render_table(rows, title="§7.3 — 1 Mbp scalability (modelled)"),
    )
    by_aligner = {row["aligner"]: row for row in rows}
    banded = by_aligner["Banded(GMX)"]["alignments_per_second"]
    windowed = by_aligner["Windowed(GMX)"]["alignments_per_second"]
    genasm = by_aligner["GenASM accelerator"]["alignments_per_second"]
    benchmark.extra_info["banded_aps"] = banded
    benchmark.extra_info["windowed_aps"] = windowed
    benchmark.extra_info["windowed_vs_genasm"] = windowed / genasm
    assert windowed > banded  # paper: 374 vs 20
    assert 0.8 < windowed / genasm < 3.0  # paper: 1.58×
    assert by_aligner["Full(GMX) (excluded)"]["dp_footprint_mb"] > 10_240
