"""Figure 11: throughput improvement of gem5-OoO over gem5-InOrder.

Paper: a wide out-of-order core yields 2.4–6.4× over the in-order design,
consistently across baselines and GMX-enhanced implementations.
"""

from repro.eval import figure11
from repro.eval.reporting import render_table


def test_fig11_ooo_speedup(benchmark, save_table):
    rows = benchmark(figure11)
    save_table(
        "fig11_ooo_speedup",
        render_table(
            rows,
            columns=["dataset", "aligner", "inorder_aps", "ooo_aps", "ooo_speedup"],
            title="Figure 11 — gem5-OoO vs gem5-InOrder speedup (modelled)",
        ),
    )
    speedups = [row["ooo_speedup"] for row in rows]
    benchmark.extra_info["min_speedup"] = min(speedups)
    benchmark.extra_info["max_speedup"] = max(speedups)
    assert min(speedups) > 2.0  # paper lower bound 2.4×
    assert max(speedups) < 10.0  # paper upper bound 6.4×
