"""§3.1 memory-footprint example: 10 kbp pair at 0.1 % error.

Paper: 381.4 MB (classical DP), 119.2 MB (Bitap), 47.6 MB (BPM); GMX
stores only tile edges — a 16× reduction over BPM at T = 32.
"""

import pytest

from repro.eval import memory_footprint_rows
from repro.eval.reporting import render_table


def test_exp_memory_footprint(benchmark, save_table):
    rows = benchmark(memory_footprint_rows)
    save_table(
        "exp_memory_footprint",
        render_table(rows, title="§3.1 — DP-state footprint, 10 kbp @ 0.1 %"),
    )
    by_algo = {row["algorithm"]: row for row in rows}
    assert by_algo["Classical DP"]["footprint_mib"] == pytest.approx(381.5, abs=0.5)
    assert by_algo["Bitap"]["footprint_mib"] == pytest.approx(119.2, abs=0.5)
    assert by_algo["BPM"]["footprint_mib"] == pytest.approx(47.7, abs=0.5)
    assert by_algo["GMX (T=32)"]["reduction_vs_bpm"] == pytest.approx(16.0)
