"""Extension: energy per alignment (quantifying §7.3's efficiency claim).

The paper gives GMX's power (8.47 mW, 2.1 % of the SoC) but no per-task
energy; this bench derives nJ/alignment and GCUPS/W per aligner on the RTL
SoC from the anchored power model.  GMX's tile instructions should beat
the scalar bit-parallel kernels by well over an order of magnitude per
DP cell.
"""

from repro.eval import energy_table
from repro.eval.reporting import render_table


def test_exp_energy(benchmark, save_table):
    rows = benchmark(energy_table)
    save_table(
        "exp_energy",
        render_table(
            rows,
            title="Extension — energy per alignment (RTL SoC, 2 kbp @ 15 %)",
        ),
    )
    by_aligner = {row["aligner"]: row for row in rows}
    gmx = by_aligner["Full(GMX)"]
    bpm = by_aligner["Full(BPM)"]
    dp = by_aligner["Full(DP)"]
    benchmark.extra_info["gmx_nj"] = gmx["nj_per_alignment"]
    benchmark.extra_info["bpm_nj"] = bpm["nj_per_alignment"]
    assert gmx["pj_per_cell"] < bpm["pj_per_cell"] / 10
    assert gmx["pj_per_cell"] < dp["pj_per_cell"] / 100
    assert (
        by_aligner["Windowed(GMX)"]["nj_per_alignment"]
        < by_aligner["Windowed(GenASM-CPU)"]["nj_per_alignment"] / 20
    )
