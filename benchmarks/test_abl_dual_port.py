"""Ablation: single vs dual register-write-port GMX (paper §5).

The paper designs separate gmx.v/gmx.h instructions because a simple RISC
core has one destination port, and notes that "if the target CPU allowed
for two destination register ports, it would be possible to merge" them —
this ablation quantifies that merged ``gmx.vh`` variant: one tile
instruction instead of two, at the cost of a second write port.
"""

from repro.eval.reporting import render_table
from repro.sim.core_model import estimate_kernel
from repro.sim.cost_model import expected_distance, predict_full_gmx
from repro.sim.soc import GEM5_INORDER, RTL_INORDER

LENGTHS = (300, 1_000, 5_000)
ERROR = 0.15


def sweep():
    rows = []
    for length in LENGTHS:
        distance = expected_distance(length, ERROR)
        for fused in (False, True):
            stats = predict_full_gmx(
                length, length, traceback=True, distance=distance, fused=fused
            )
            for system in (GEM5_INORDER, RTL_INORDER):
                estimate = estimate_kernel(stats, system.core, system.memory)
                rows.append(
                    {
                        "length": length,
                        "variant": "gmx.vh (2 ports)" if fused else "gmx.v+gmx.h",
                        "system": system.name,
                        "instructions": stats.total_instructions,
                        "alignments_per_second": 1.0 / estimate.seconds,
                    }
                )
    return rows


def test_abl_dual_port(benchmark, save_table):
    rows = benchmark(sweep)
    save_table(
        "abl_dual_port",
        render_table(rows, title="Ablation — single vs dual write-port GMX"),
    )
    by_key = {
        (row["length"], row["variant"], row["system"]): row for row in rows
    }
    for length in LENGTHS:
        single = by_key[(length, "gmx.v+gmx.h", "RTL-InOrder")]
        dual = by_key[(length, "gmx.vh (2 ports)", "RTL-InOrder")]
        # Fewer instructions, strictly better throughput, bounded by 2×.
        assert dual["instructions"] < single["instructions"]
        gain = dual["alignments_per_second"] / single["alignments_per_second"]
        assert 1.0 < gain < 2.0
