"""Figure 13: post-P&R area/power breakdown of the GMX-enhanced SoC.

Paper anchors: GMX total 0.0216 mm² (1.7 % of the SoC; 0.008 mm² GMX-AC +
0.0108 mm² GMX-TB) and 8.47 mW (2.1 % of SoC power) in GF 22nm at 1 GHz.
"""

import pytest

from repro.eval import figure13
from repro.eval.reporting import render_table


def test_fig13_area_power(benchmark, save_table):
    rows = benchmark(figure13)
    save_table(
        "fig13_area_power",
        render_table(rows, title="Figure 13 — SoC area/power breakdown"),
    )
    gmx = next(row for row in rows if row["component"] == "GMX total")
    benchmark.extra_info["gmx_area_mm2"] = gmx["area_mm2"]
    benchmark.extra_info["gmx_power_mw"] = gmx["power_mw"]
    assert gmx["area_mm2"] == pytest.approx(0.0216)
    assert gmx["power_mw"] == pytest.approx(8.47, rel=0.01)
    assert gmx["area_fraction"] == pytest.approx(0.017, rel=0.02)
