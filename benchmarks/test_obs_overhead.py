"""Overhead bound for the observability layer.

The acceptance bar for :mod:`repro.obs` is that *disabled* instrumentation
costs <5% on the kernel microbenches: every instrumented call site
collapses to one module-flag check, so a library user who never arms a
recorder pays (almost) nothing.  The enabled path is also measured and
reported — informational, since recording is opt-in.
"""

from __future__ import annotations

import random
from time import perf_counter

import pytest

from repro.align import FullGmxAligner
from repro.obs import runtime as obs
from repro.workloads.generator import generate_pair

#: Accepted disabled-instrumentation overhead vs the median timing noise
#: of repeated identical runs (see test docstring).
MAX_DISABLED_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def pair_500():
    return generate_pair(500, 0.10, random.Random(11))


@pytest.fixture(autouse=True)
def obs_off():
    obs.disable()
    yield
    obs.disable()


def _best_of(fn, repeats=5):
    """Best-of-N wall time of ``fn()`` (minimum filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def test_bench_full_gmx_obs_disabled(benchmark, pair_500):
    aligner = FullGmxAligner()
    assert not obs.enabled()
    result = benchmark.pedantic(
        aligner.align, args=(pair_500.pattern, pair_500.text), rounds=2,
        iterations=1,
    )
    assert result.exact


def test_bench_full_gmx_obs_enabled(benchmark, pair_500):
    aligner = FullGmxAligner()
    obs.enable()
    result = benchmark.pedantic(
        aligner.align, args=(pair_500.pattern, pair_500.text), rounds=2,
        iterations=1,
    )
    assert result.exact
    benchmark.extra_info["spans"] = len(obs.recorder().spans)


def test_disabled_overhead_is_bounded(pair_500):
    """Disabled-path cost stays within MAX_DISABLED_OVERHEAD of an align.

    The instrumentation a single ``align()`` executes while disabled is a
    handful of obs calls: the decorator's flag check plus one
    ``obs.span()``/``obs.inc()`` per phase — never per tile or per cell.
    This test measures the actual per-call cost of the disabled
    primitives, multiplies by a generous per-align call budget (16; the
    real count for Full(GMX) is 4), and requires the product to stay
    under 5% of a measured 500 bp align.  That bounds the overhead with
    two stable measurements instead of differencing two noisy ones.
    """
    assert not obs.enabled()
    calls = 100_000

    def disabled_primitives():
        for _ in range(calls):
            with obs.span("x", k=1):
                pass
            obs.inc("c")

    per_call = _best_of(disabled_primitives) / (2 * calls)

    aligner = FullGmxAligner()
    align_time = _best_of(
        lambda: aligner.align(pair_500.pattern, pair_500.text), repeats=3
    )

    budget_per_align = 16  # >> the 4 obs calls a Full(GMX) align makes
    overhead = (budget_per_align * per_call) / align_time
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled obs calls cost {per_call * 1e9:.0f} ns each; "
        f"{budget_per_align} of them are {overhead:.2%} of a "
        f"{align_time * 1e3:.1f} ms align (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_enabled_overhead_recorded_not_gated(pair_500):
    """Enabled-path cost is measured and attached, never asserted.

    Recording is opt-in; this documents the price without making CI
    flaky.  The span count is asserted instead — it is deterministic.
    """
    aligner = FullGmxAligner()
    obs.enable()
    aligner.align(pair_500.pattern, pair_500.text)
    spans = obs.recorder().spans
    names = {s.name for s in spans}
    assert {"align.full_gmx", "phase.compute", "phase.traceback"} <= names
