"""Extension: where does GMX's brute force cross WFA's score-bounded work?

WFA (from the GMX authors' own group) is the modern exact-alignment
frontier: O(n·s) work.  GMX's tiles do Θ(n·m/T²) *instructions* regardless
of divergence.  This bench sweeps the error rate at a fixed length and
finds the crossover: at low divergence WFA executes fewer instructions;
past a few percent error, the GMX tile instruction wins — quantifying the
design space the paper's "fast for noisy long reads" positioning implies.

(Functional runs: both kernels execute for real on each pair.)
"""

import random

from repro.align import FullGmxAligner
from repro.baselines import WfaAligner
from repro.eval.reporting import render_table
from repro.workloads.generator import generate_pair

LENGTH = 1_200
ERROR_RATES = (0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15)


def sweep():
    gmx = FullGmxAligner()
    wfa = WfaAligner()
    rows = []
    for error in ERROR_RATES:
        rng = random.Random(4242)
        pair = generate_pair(LENGTH, error, rng)
        gmx_result = gmx.align(pair.pattern, pair.text, traceback=False)
        wfa_result = wfa.align(pair.pattern, pair.text, traceback=False)
        assert gmx_result.score == wfa_result.score
        rows.append(
            {
                "error_rate": error,
                "distance": gmx_result.score,
                "gmx_instructions": gmx_result.stats.total_instructions,
                "wfa_instructions": wfa_result.stats.total_instructions,
                "gmx_vs_wfa": (
                    wfa_result.stats.total_instructions
                    / gmx_result.stats.total_instructions
                ),
            }
        )
    return rows


def test_abl_wfa_crossover(benchmark, save_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "abl_wfa_crossover",
        render_table(
            rows,
            title="Extension — Full(GMX) vs WFA instruction crossover (1.2 kbp)",
        ),
    )
    by_rate = {row["error_rate"]: row for row in rows}
    # Low divergence: WFA's score-bounded work wins.
    assert by_rate[0.001]["gmx_vs_wfa"] < 1.0
    # The paper's noisy-long-read regime: GMX wins by a wide margin.
    assert by_rate[0.15]["gmx_vs_wfa"] > 10.0
    # The ratio is monotone in the error rate — a genuine crossover.
    ratios = [row["gmx_vs_wfa"] for row in rows]
    assert ratios == sorted(ratios)
