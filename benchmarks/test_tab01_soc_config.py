"""Table 1: RTL-InOrder SoC configuration and system parameters."""

from repro.eval import table1
from repro.eval.reporting import render_table
from repro.sim.soc import RTL_INORDER


def test_tab01_soc_config(benchmark, save_table):
    rows = benchmark(table1)
    save_table(
        "tab01_soc_config",
        render_table(rows, title="Table 1 — RTL-InOrder SoC configuration"),
    )
    parameters = {row["parameter"]: row["value"] for row in rows}
    assert "32 KB" in parameters["Data cache"]
    assert "512 KBytes" in parameters["LLC"]
    # The modelled system mirrors the table.
    assert RTL_INORDER.memory.levels[0].size_bytes == 32 * 1024
    assert RTL_INORDER.memory.levels[-1].size_bytes == 512 * 1024
