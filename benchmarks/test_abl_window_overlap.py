"""Ablation: windowed (W, O) sweep (DESIGN.md §5).

Measures, functionally, how the window size and overlap trade accuracy
(score inflation over the exact distance) against work (instructions), on
noisy long-read-like pairs.  The overlap absorbs path divergence between
windows — the reason Darwin/GenASM run with O = W/3.
"""

import random

from repro.align import WindowedGmxAligner
from repro.baselines import EdlibAligner
from repro.eval.reporting import render_table
from repro.workloads.generator import generate_pair

CONFIGS = ((48, 0), (48, 16), (96, 0), (96, 32), (96, 64), (192, 64))
PAIRS = 6
LENGTH = 800
ERROR = 0.10


def sweep():
    rng = random.Random(1234)
    pairs = [generate_pair(LENGTH, ERROR, rng) for _ in range(PAIRS)]
    exact = EdlibAligner()
    exact_scores = [
        exact.align(p.pattern, p.text, traceback=False).score for p in pairs
    ]
    rows = []
    for window, overlap in CONFIGS:
        aligner = WindowedGmxAligner(window=window, overlap=overlap)
        scores = []
        instructions = 0
        for pair in pairs:
            result = aligner.align(pair.pattern, pair.text)
            result.alignment.validate()
            scores.append(result.score)
            instructions += result.stats.total_instructions
        inflation = sum(scores) / sum(exact_scores)
        rows.append(
            {
                "window": window,
                "overlap": overlap,
                "score_inflation": inflation,
                "instructions_per_pair": instructions // PAIRS,
            }
        )
    return rows


def test_abl_window_overlap(benchmark, save_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "abl_window_overlap",
        render_table(
            rows, title="Ablation — windowed (W, O) sweep (800 bp @ 10 %)"
        ),
    )
    by_config = {(row["window"], row["overlap"]): row for row in rows}
    # Overlap buys accuracy at the same window size...
    assert (
        by_config[(96, 32)]["score_inflation"]
        <= by_config[(96, 0)]["score_inflation"]
    )
    # ...and costs work.
    assert (
        by_config[(96, 64)]["instructions_per_pair"]
        > by_config[(96, 0)]["instructions_per_pair"]
    )
    # The paper's configuration is near-exact on this divergence.
    assert by_config[(96, 32)]["score_inflation"] < 1.1
