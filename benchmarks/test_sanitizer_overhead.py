"""Overhead bound for the sanitizer's disabled mode.

The acceptance bar mirrors the observability layer's: when no
``sanitize()`` session is armed, the batch-boundary instrumentation in
``align_batch`` / ``align_batch_sharded`` / ``align_batch_resilient``
must cost <5% — every instrumented boundary collapses to one module-flag
check (``dsan.armed`` is False), so a library user who never arms the
sanitizer pays (almost) nothing.  The armed path is measured and
reported, never gated: guarding is opt-in, CI-only.
"""

from __future__ import annotations

import random
from time import perf_counter

import pytest

from repro.align import FullGmxAligner
from repro.align.batch import align_batch
from repro.analysis.sanitizer import sanitize
from repro.analysis.sanitizer import runtime as dsan
from repro.workloads.generator import generate_pair

#: Accepted disabled-instrumentation overhead vs one measured align.
MAX_DISABLED_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def pair_500():
    return generate_pair(500, 0.10, random.Random(11))


def _best_of(fn, repeats=5):
    """Best-of-N wall time of ``fn()`` (minimum filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def test_bench_batch_sanitizer_disabled(benchmark, pair_500):
    aligner = FullGmxAligner()
    pairs = [(pair_500.pattern, pair_500.text)] * 4
    assert not dsan.armed()
    batch = benchmark.pedantic(
        align_batch, args=(aligner, pairs), rounds=2, iterations=1
    )
    assert len(batch.results) == 4


def test_bench_batch_sanitizer_armed(benchmark, pair_500):
    aligner = FullGmxAligner()
    pairs = [(pair_500.pattern, pair_500.text)] * 4

    def armed_batch():
        with sanitize():
            return align_batch(aligner, pairs)

    batch = benchmark.pedantic(armed_batch, rounds=2, iterations=1)
    assert len(batch.results) == 4


def test_disabled_overhead_is_bounded(pair_500):
    """Disabled-path cost stays within MAX_DISABLED_OVERHEAD of an align.

    The sanitizer instrumentation a batch executes while disarmed is one
    ``batch_begin()``/``batch_end()`` pair — two module-flag checks per
    *batch*, never per pair or per tile.  This test measures the actual
    per-call cost of the disarmed primitives, multiplies by a generous
    per-batch call budget (16; the real count is 2), and requires the
    product to stay under 5% of a single measured 500 bp align (a batch
    runs many of those, so the real ratio is far smaller).  Two stable
    measurements instead of differencing two noisy ones.
    """
    assert not dsan.armed()
    calls = 100_000

    def disabled_primitives():
        for _ in range(calls):
            token = dsan.batch_begin()
            dsan.batch_end(token, "bench")

    per_call = _best_of(disabled_primitives) / (2 * calls)

    aligner = FullGmxAligner()
    align_time = _best_of(
        lambda: aligner.align(pair_500.pattern, pair_500.text), repeats=3
    )

    budget_per_batch = 16  # >> the 2 dsan calls a batch boundary makes
    overhead = (budget_per_batch * per_call) / align_time
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disarmed dsan calls cost {per_call * 1e9:.0f} ns each; "
        f"{budget_per_batch} of them are {overhead:.2%} of a "
        f"{align_time * 1e3:.1f} ms align (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_armed_overhead_recorded_not_gated(pair_500):
    """Armed-path cost is observed, never asserted — guarding is opt-in.

    The deterministic facts are asserted instead: the session checks the
    batch boundary and the results match the disarmed run exactly.
    """
    aligner = FullGmxAligner()
    pairs = [(pair_500.pattern, pair_500.text)] * 2
    plain = align_batch(aligner, pairs)
    with sanitize() as session:
        guarded = align_batch(aligner, pairs)
    assert session.batches_checked >= 1
    assert [r.score for r in plain.results] == [
        r.score for r in guarded.results
    ]
    assert [r.cigar for r in plain.results] == [
        r.cigar for r in guarded.results
    ]
