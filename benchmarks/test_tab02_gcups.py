"""Table 2: peak GCUPS per processing engine across accelerators.

Paper: GMX offers the highest GCUPS per PE (1024 at T = 32 / 1 GHz), thanks
to the GMXΔ modules computing 1024 DP elements per cycle.
"""

from repro.eval import table2
from repro.eval.reporting import render_table


def test_tab02_gcups(benchmark, save_table):
    rows = benchmark(table2)
    save_table(
        "tab02_gcups",
        render_table(rows, title="Table 2 — peak GCUPS per PE"),
    )
    by_study = {row["study"]: row for row in rows}
    gmx = by_study["GMX Unit"]
    assert gmx["pgcups_per_pe"] == 1024.0
    assert all(
        row["pgcups_per_pe"] <= gmx["pgcups_per_pe"] for row in rows
    )
    # The structural model regenerates the published GMX design point.
    modelled = by_study["GMX Unit (this model)"]
    assert modelled["pgcups_per_pe"] == gmx["pgcups_per_pe"]
