"""Figure 10: gem5-InOrder throughput, software baselines vs GMX.

Regenerates the alignments/second of every aligner (Full/Banded/Windowed ×
{DP, BPM, Edlib, GenASM-CPU, GMX}) on the 5 short and 10 long datasets, and
the per-family geomean speedups the paper's §7.2 text quotes (18×/597×
short, 42×/2436× long for the Full family, etc.).
"""

from repro.eval import figure10, speedup_summary
from repro.eval.reporting import render_table
from repro.sim.soc import GEM5_INORDER


def test_fig10_inorder_throughput(benchmark, save_table):
    rows = benchmark(figure10)
    summary = speedup_summary(rows)
    save_table(
        "fig10_inorder_throughput",
        render_table(
            rows,
            columns=["dataset", "aligner", "alignments_per_second"],
            title=f"Figure 10 — {GEM5_INORDER.name} throughput (modelled)",
        )
        + "\n\n"
        + render_table(summary, title="Per-family geomean GMX speedups"),
    )
    by_family = {
        (row["family"], row["kind"]): row["geomean_speedup"] for row in summary
    }
    benchmark.extra_info["gmx_vs_bpm_short"] = by_family[
        ("Full(GMX) vs Full(BPM)", "short")
    ]
    benchmark.extra_info["gmx_vs_bpm_long"] = by_family[
        ("Full(GMX) vs Full(BPM)", "long")
    ]
    # Paper: Full(GMX) 18× over Full(BPM) short, 42× long — same regime.
    assert 5 < by_family[("Full(GMX) vs Full(BPM)", "short")] < 100
    assert by_family[("Full(GMX) vs Full(DP)", "long")] > 300
