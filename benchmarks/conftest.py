"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Since
pytest captures stdout, each bench also writes its rendered table to
``benchmarks/results/<name>.txt`` so the regenerated rows survive the run,
and attaches headline numbers to ``benchmark.extra_info`` (visible in the
pytest-benchmark report).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated tables are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Write a rendered table (and echo it) under a stable name."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
