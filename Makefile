# Test and benchmark entry points.
#
# `test` is the tier-1 gate (everything, including slow fuzz sweeps and
# the wall-clock parallel tests).  `test-fast` drops the `slow` marker for
# quick iteration; `test-slow` runs only the long sweeps, sized for a
# scheduled job where the differential fuzzers can afford more cases.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-fast test-slow bench verify

test:
	$(PYTEST) -x -q

test-fast:
	$(PYTEST) -x -q -m "not slow"

test-slow:
	$(PYTEST) -q -m slow

bench:
	$(PYTEST) -q benchmarks

verify:
	PYTHONPATH=src $(PYTHON) -m repro verify
