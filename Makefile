# Test, lint and benchmark entry points.
#
# `test` is the tier-1 gate (everything, including slow fuzz sweeps and
# the wall-clock parallel tests).  `test-fast` drops the `slow` marker for
# quick iteration; `test-slow` runs only the long sweeps, sized for a
# scheduled job where the differential fuzzers can afford more cases.
# `test-chaos` runs the fault-injection campaigns plus a CLI-level chaos
# run; the campaign falls back to the inline executor on hosts without
# usable multiprocessing, so the target degrades gracefully everywhere.
# `test-backends` runs the kernel-backend suites (registry, differential
# fuzz, pickling, backend-parameterized conformance) and the speedup gate
# that maintains BENCH_backends.json.
# `test-cov` runs the fast suite under pytest-cov and enforces COV_MIN
# (skipped with a notice when pytest-cov is not installed — the repro
# container ships without it; CI installs it in the coverage job).
# `lint` chains ruff and mypy (skipped with a notice when not installed —
# the repro container ships without them; CI installs both) and always
# finishes with the in-tree static analyzer, `repro lint`.
# `sanitize` runs the concurrency & determinism sanitizer: the
# worker-reachability scan plus guarded/shadow execution (`repro
# sanitize`), its violation-corpus self-check (which must exit non-zero),
# the sanitizer unit suites, and the conformance suite with the runtime
# guards armed (`--sanitize`).
# `serve-test` runs the alignment-service suites (cache, coalescer, pool
# lifecycle, service, HTTP, obs drain, load smoke) plus the serving-path
# chaos drill through the CLI (`repro chaos --serve`).
# `dist-test` runs the distributed-execution suites (protocol, packing,
# worker node, coordinator, dist chaos) plus the multi-node chaos drill
# through the CLI (`repro chaos --dist`: 3 supervised localhost worker
# processes, seeded node faults, byte-identical + exactly-once proof).
# `stream-test` runs the chromosome-scale streaming suites (chunker,
# canonical CIGAR forms, stitcher, pipeline + engines, chunking
# invariance + window conformance properties, the tracemalloc O(chunk)
# memory gate), the seqio streaming tests, the BENCH_stream.json
# benchmark, and a scaled end-to-end conformance drill through the CLI
# (1 Mbp reference x 100 kbp query, 50 Hirschberg-verified windows).

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest
COV_MIN ?= 80

.PHONY: test test-fast test-slow test-chaos test-cov test-backends bench verify lint sanitize serve-test dist-test stream-test

test:
	$(PYTEST) -x -q

test-fast:
	$(PYTEST) -x -q -m "not slow"

test-cov:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTEST) -q -m "not slow" \
			--cov=repro --cov-report=term-missing \
			--cov-fail-under=$(COV_MIN); \
	else \
		echo "pytest-cov not installed; skipping coverage gate (pip install pytest-cov)"; \
	fi

test-slow:
	$(PYTEST) -q -m slow

test-chaos:
	$(PYTEST) -q -m chaos
	PYTHONPATH=src $(PYTHON) -m repro chaos --seed 7 --faults 25

test-backends:
	$(PYTEST) -q tests/align/test_backends.py \
		tests/align/test_backend_differential.py \
		tests/align/test_backend_pickling.py \
		tests/conformance
	$(PYTEST) -q benchmarks/test_backend_speedup.py

serve-test:
	$(PYTEST) -q tests/serve
	PYTHONPATH=src $(PYTHON) -m repro chaos --serve --pairs 16 --workers 2
	PYTHONPATH=src $(PYTHON) -m repro bench serve \
		--requests 60 --clients 4 --unique 12 --workers 2

dist-test:
	$(PYTEST) -q tests/dist
	PYTHONPATH=src $(PYTHON) -m repro chaos --dist \
		--seed 29 --faults 30 --nodes 3 --length 32 --lease-timeout 1.2

stream-test:
	$(PYTEST) -q tests/stream tests/workloads/test_seqio.py
	$(PYTEST) -q benchmarks/test_stream_memory.py
	PYTHONPATH=src $(PYTHON) tests/stream/e2e_fixture.py /tmp/stream-e2e
	PYTHONPATH=src $(PYTHON) -m repro stream align \
		/tmp/stream-e2e/e2e_ref.fasta /tmp/stream-e2e/e2e_query.fasta \
		--record chrE2E --engine pool --workers 2 \
		--verify-windows 50 --seed 7

bench:
	$(PYTEST) -q benchmarks

verify:
	PYTHONPATH=src $(PYTHON) -m repro verify

sanitize:
	PYTHONPATH=src $(PYTHON) -m repro sanitize
	@if PYTHONPATH=src $(PYTHON) -m repro sanitize --corpus \
			--skip-static --skip-dynamic --skip-shadow >/dev/null; then \
		echo "violation corpus sanitized clean — dsan lost its teeth" >&2; \
		exit 1; \
	fi
	$(PYTEST) -q tests/analysis/test_sanitizer_reachability.py \
		tests/analysis/test_sanitizer_guards.py \
		tests/analysis/test_sanitizer_shadow.py \
		tests/analysis/test_sanitizer_corpus.py \
		tests/analysis/test_sanitizer_campaign.py \
		tests/analysis/test_sarif.py
	$(PYTEST) -q tests/conformance --sanitize

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file pyproject.toml; \
	else \
		echo "mypy not installed; skipping (pip install -e .[lint])"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro lint
