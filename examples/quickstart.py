#!/usr/bin/env python3
"""Quickstart: align two sequences with GMX and inspect what happened.

Runs the paper's Figure-1/Figure-6 example (GCAT vs GATT), then a more
realistic pair, showing the three levels of the library:

1. the one-call public API (``align_pair``);
2. the co-designed aligners (Full / Banded / Windowed);
3. the raw GMX ISA — csrw/gmx.v/gmx.h/gmx.tb over architectural state.

Usage::

    python examples/quickstart.py
"""

import random

from repro import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner, align_pair
from repro.core.isa import GmxIsa, encode_pos, pack_vector, unpack_vector
from repro.core.tile import boundary_deltas
from repro.workloads import generate_pair


def paper_example() -> None:
    """The GCAT/GATT example from the paper's Figures 1 and 6."""
    print("=== Paper example: GCAT vs GATT ===")
    result = align_pair("GCAT", "GATT", tile_size=2)
    print(f"edit distance : {result.score}")
    print(f"CIGAR         : {result.cigar}")
    print(f"exact         : {result.exact}")
    result.alignment.validate()
    print("alignment validated: operations replay pattern into text\n")


def three_aligners() -> None:
    """Full / Banded / Windowed on one noisy long-read-like pair."""
    print("=== Full vs Banded vs Windowed on a 2 kbp pair (10% error) ===")
    pair = generate_pair(2_000, 0.10, random.Random(42))
    for aligner in (
        FullGmxAligner(),
        BandedGmxAligner(),
        WindowedGmxAligner(),
    ):
        result = aligner.align(pair.pattern, pair.text)
        stats = result.stats
        print(
            f"{aligner.name:15s} score={result.score:4d} exact={result.exact!s:5s} "
            f"tiles={stats.tiles:6d} instructions={stats.total_instructions:8d} "
            f"DP-state={stats.dp_bytes_peak / 1024:8.1f} KiB"
        )
    print()


def raw_isa() -> None:
    """Drive the GMX ISA by hand: one tile computation and its traceback."""
    print("=== Raw GMX ISA: one 4x4 tile ===")
    isa = GmxIsa(tile_size=4)
    isa.csrw("gmx_pattern", "GCAT")
    isa.csrw("gmx_text", "GATT")
    dv_in = pack_vector(boundary_deltas(4))  # left matrix boundary: +1s
    dh_in = pack_vector(boundary_deltas(4))  # top matrix boundary: +1s
    dv_out = isa.gmx_v(dv_in, dh_in)
    dh_out = isa.gmx_h(dv_in, dh_in)
    print(f"gmx.v -> ΔV_out = {unpack_vector(dv_out, 4)}")
    print(f"gmx.h -> ΔH_out = {unpack_vector(dh_out, 4)}")
    distance = 4 + sum(unpack_vector(dh_out, 4))
    print(f"distance from bottom-row deltas: 4 + sum(ΔH) = {distance}")

    isa.csrw("gmx_pos", encode_pos(3, 3, tile_size=4))
    traceback = isa.gmx_tb(dv_in, dh_in)
    print(f"gmx.tb -> ops={''.join(traceback.ops)} next_tile={traceback.next_tile.name}")
    print(f"gmx_lo={isa.gmx_lo:#06x} gmx_hi={isa.gmx_hi:#06x}")
    print(f"retired: {dict(isa.retired)}")


if __name__ == "__main__":
    paper_example()
    three_aligners()
    raw_isa()
