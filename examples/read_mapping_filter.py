#!/usr/bin/env python3
"""Read-mapping edit-distance filter — the paper's motivating pipeline use.

A resequencing mapper produces many candidate (read, reference-window)
pairs per read; most candidates are wrong and must be discarded quickly.
Edit-distance verification is the standard filter (§2.4), and it is exactly
the workload GMX accelerates inside the CPU pipeline — no batching to a
co-processor needed.

This example builds a toy reference, samples reads with sequencing errors,
generates candidate locations (the true one plus decoys), and verifies
candidates with Banded(GMX) under an error budget:

* candidates whose distance exceeds the budget are rejected;
* accepted candidates get a full alignment (CIGAR) for downstream use.

Usage::

    python examples/read_mapping_filter.py
"""

import random

from repro.align import BandedGmxAligner
from repro.workloads.generator import mutate, random_sequence

REFERENCE_LENGTH = 50_000
READ_LENGTH = 150
READ_COUNT = 40
ERROR_RATE = 0.05
#: Maximum edit distance accepted by the filter (twice the expected errors).
ERROR_BUDGET = int(2 * ERROR_RATE * READ_LENGTH)
#: Wrong candidate locations tested per read.
DECOYS_PER_READ = 3


def sample_reads(reference: str, rng: random.Random):
    """Sample reads with sequencing errors and remember their true origin."""
    reads = []
    for _ in range(READ_COUNT):
        origin = rng.randrange(0, len(reference) - READ_LENGTH)
        read = mutate(
            reference[origin : origin + READ_LENGTH], ERROR_RATE, rng
        )
        reads.append((read, origin))
    return reads


def candidates_for(origin: int, rng: random.Random):
    """The true location plus a few decoys (as a seed stage would emit)."""
    locations = [origin]
    for _ in range(DECOYS_PER_READ):
        locations.append(rng.randrange(0, REFERENCE_LENGTH - READ_LENGTH))
    rng.shuffle(locations)
    return locations


def main() -> None:
    rng = random.Random(2024)
    reference = random_sequence(REFERENCE_LENGTH, rng)
    reads = sample_reads(reference, rng)
    verifier = BandedGmxAligner(band=ERROR_BUDGET + 16, auto_widen=False)

    accepted = 0
    rejected = 0
    true_hits = 0
    total_instructions = 0
    for read, origin in reads:
        best = None
        for location in candidates_for(origin, rng):
            # Same-length window: indels shift the read length by at most
            # the error budget, which global alignment absorbs.
            window = reference[location : location + READ_LENGTH]
            result = verifier.align(read, window, traceback=False)
            total_instructions += result.stats.total_instructions
            if result.score <= ERROR_BUDGET:
                accepted += 1
                if best is None or result.score < best[0]:
                    best = (result.score, location)
            else:
                rejected += 1
        if best is not None:
            score, location = best
            true_hits += location == origin
            alignment = verifier.align(
                read, reference[location : location + READ_LENGTH]
            )
            alignment.alignment.validate()

    tested = accepted + rejected
    print(f"reference        : {REFERENCE_LENGTH} bp (synthetic)")
    print(f"reads            : {READ_COUNT} x {READ_LENGTH} bp @ {ERROR_RATE:.0%} error")
    print(f"candidates tested: {tested} (budget k = {ERROR_BUDGET})")
    print(f"accepted         : {accepted}, rejected: {rejected}")
    print(f"true locations recovered: {true_hits}/{READ_COUNT}")
    print(f"mean GMX-side instructions per candidate: {total_instructions // tested}")
    if true_hits < READ_COUNT:
        raise SystemExit("filter lost true locations — check the budget")
    print("all true locations pass the filter; decoys rejected cheaply")


if __name__ == "__main__":
    main()
