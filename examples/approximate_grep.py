#!/usr/bin/env python3
"""Approximate pattern matching — the paper's non-genomics motivation.

Sequence alignment "remains a fundamental problem ... from pattern matching
to computational biology" (§1): the very same machinery greps text with
errors.  This example implements a tiny agrep:

1. **scan** each line with Bitap approximate search (``bitap_search``) to
   find where the pattern occurs with ≤ k errors — the fast filter;
2. **localise + explain** each hit with an INFIX-mode Full(GMX) alignment
   over any alphabet (GMX needs no 2-bit encoding or lookup tables, §4.2),
   recovering the matched span and a CIGAR.

Usage::

    python examples/approximate_grep.py           # demo corpus
    python examples/approximate_grep.py PATTERN K FILE
"""

import sys

from repro.align import AlignmentMode, FullGmxAligner
from repro.baselines import bitap_search

DEMO_PATTERN = "alignment"
DEMO_ERRORS = 2
DEMO_CORPUS = """\
sequence alignment remains a fundamental problem in computer science
the optimal alignement minimizes the number of edit operations
bitap scans every line while GMX tiles explain each match
dynamic programming covers insertion deletion and mismatch
allignment and alginment are both two edits away
no related words on this line at all
"""


def grep(pattern: str, k: int, lines) -> int:
    """Print approximate matches; returns the number of matching lines."""
    explainer = FullGmxAligner(mode=AlignmentMode.INFIX)
    matched = 0
    for number, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        hits = bitap_search(pattern, line, k)
        if not hits:
            continue
        matched += 1
        result = explainer.align(pattern, line)
        span = line[result.text_start : result.text_end]
        print(f"{number}: {line}")
        print(
            f"   -> best span {result.text_start}..{result.text_end} "
            f"{span!r} with {result.score} error(s), CIGAR {result.cigar}"
        )
        result.alignment.validate()
    return matched


def main(argv) -> None:
    if len(argv) == 4:
        pattern, k, path = argv[1], int(argv[2]), argv[3]
        with open(path) as handle:
            lines = handle.readlines()
    else:
        pattern, k = DEMO_PATTERN, DEMO_ERRORS
        lines = DEMO_CORPUS.splitlines()
        print(f"demo: searching {pattern!r} with <= {k} errors\n")
    matched = grep(pattern, k, lines)
    print(f"\n{matched} line(s) matched")


if __name__ == "__main__":
    main(sys.argv)
