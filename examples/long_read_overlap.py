#!/usr/bin/env python3
"""Noisy long-read overlap alignment — the assembly use case (§2.1).

De-novo assemblers align pairs of long, error-prone reads (ONT/PacBio CLR,
5–15 % error) end-to-end to confirm overlaps.  This is where quadratic
full-DP breaks down and where the paper's Windowed strategy (Darwin,
GenASM) shines: constant memory, near-optimal alignments on exactly this
divergence profile.

The example aligns simulated noisy 20 kbp read pairs with Windowed(GMX)
and checks the heuristic against the exact banded distance, then prints the
modelled speed of the same work on the paper's RTL SoC.

Usage::

    python examples/long_read_overlap.py
"""

import random
import time

from repro.align import WindowedGmxAligner
from repro.baselines import EdlibAligner
from repro.sim import RTL_INORDER, estimate_kernel
from repro.workloads.generator import generate_pair

READ_LENGTH = 20_000
ERROR_RATE = 0.12
PAIRS = 3


def main() -> None:
    rng = random.Random(7)
    windowed = WindowedGmxAligner()  # W = 96, O = 32
    exact = EdlibAligner()
    print(f"aligning {PAIRS} pairs of {READ_LENGTH} bp reads @ {ERROR_RATE:.0%} error\n")
    for index in range(PAIRS):
        pair = generate_pair(READ_LENGTH, ERROR_RATE, rng)
        started = time.perf_counter()
        result = windowed.align(pair.pattern, pair.text)
        elapsed = time.perf_counter() - started
        result.alignment.validate()
        true_distance = exact.align(
            pair.pattern, pair.text, traceback=False
        ).score
        inflation = result.score / true_distance
        estimate = estimate_kernel(
            result.stats, RTL_INORDER.core, RTL_INORDER.memory
        )
        print(
            f"pair {index}: windowed score={result.score} "
            f"exact={true_distance} (inflation {inflation:.3f})"
        )
        print(
            f"         DP state {result.stats.dp_bytes_peak} B, "
            f"{result.stats.total_instructions:,} modelled instructions, "
            f"{estimate.seconds * 1e3:.2f} ms on the RTL SoC "
            f"({elapsed:.1f} s functional Python)"
        )
        if inflation > 1.05:
            raise SystemExit("windowed heuristic drifted >5% from optimal")
    print("\nwindowed alignments within 5% of optimal at constant memory")


if __name__ == "__main__":
    main()
