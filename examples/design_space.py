#!/usr/bin/env python3
"""GMX hardware design-space exploration (paper §6.3 and Table 2).

Sweeps the tile size T and prints, per design point: pipeline depths of
GMX-AC and GMX-TB at 1 GHz, silicon area/power, peak GCUPS, and the
gate budget per compute cell — the trade-off that leads the paper to pick
T = 32 for 64-bit registers.

Also demonstrates the cache simulator on the access pattern of a Full(GMX)
traceback matrix, comparing against the analytic residence classification
used by the figure models.

Usage::

    python examples/design_space.py
"""

from repro.eval.reporting import render_table
from repro.hw import GmxAcModel, GmxTbModel, sweep_tile_sizes
from repro.sim.cache import CacheConfig, CacheHierarchy


def print_sweep() -> None:
    rows = []
    for point in sweep_tile_sizes((4, 8, 16, 32, 64, 128)):
        ac = GmxAcModel(tile_size=point.tile_size)
        rows.append(
            {
                "T": point.tile_size,
                "elements/instr": point.elements_per_instruction,
                "ac_cycles": point.ac_stages,
                "tb_cycles": point.tb_stages,
                "area_mm2": round(point.area_mm2, 4),
                "power_mw": round(point.power_mw, 2),
                "peak_gcups": point.peak_gcups,
                "gcups/mm2": round(point.gcups_per_mm2, 0),
                "cell_gates": ac.cell_budget().total_gates,
            }
        )
    print(render_table(rows, title="GMX design-space sweep @ 1 GHz (GF 22nm model)"))
    print()


def cache_demo() -> None:
    """Replay a Full(GMX) 4 kbp edge-matrix stream through the cache sim."""
    print("Cache simulator vs analytic classification (Full(GMX), 4 kbp):")
    tile = 32
    tiles_per_side = 4_096 // tile
    edge_bytes = 16  # two 8-byte registers per tile
    hierarchy = CacheHierarchy(
        [
            CacheConfig("L1d", 32 * 1024, 4, latency_cycles=3),
            CacheConfig("LLC", 512 * 1024, 8, latency_cycles=14),
        ]
    )
    base = 0x10_0000
    for column in range(tiles_per_side):
        for row in range(tiles_per_side):
            address = base + (row * tiles_per_side + column) * edge_bytes
            left = base + (row * tiles_per_side + column - 1) * edge_bytes
            hierarchy.access(left)  # read the previous column's edge
            hierarchy.access(address, write=True)  # write this tile's edges
    hierarchy.finalize()
    for name, stats in hierarchy.stats_by_level.items():
        print(
            f"  {name}: {stats.accesses} accesses, "
            f"miss rate {stats.miss_rate:.1%}, {stats.writebacks} writebacks"
        )
    matrix_bytes = tiles_per_side**2 * edge_bytes
    print(
        f"  edge matrix = {matrix_bytes // 1024} KiB vs LLC 512 KiB -> "
        f"{'fits: no DRAM streaming' if matrix_bytes <= 512 * 1024 else 'spills'}"
    )
    print(f"  memory accesses after LLC: {hierarchy.memory_accesses}")


if __name__ == "__main__":
    print_sweep()
    cache_demo()
