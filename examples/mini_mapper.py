#!/usr/bin/env python3
"""End-to-end resequencing with the built-in read mapper (§2.1's pipeline).

Builds a synthetic "genome", sequences reads from both strands with
Illumina-like errors, and maps them back with `repro.mapper.ReadMapper` —
k-mer seeding, seed-vote pre-filtering, and GMX INFIX verification, the
exact pipeline shape the paper designs GMX to slot into.  Finishes with
the mapper's aggregate verification cost projected onto the RTL SoC.

Usage::

    python examples/mini_mapper.py
"""

import random

from repro.core.alphabet import reverse_complement
from repro.mapper import ReadMapper
from repro.sim import RTL_INORDER, estimate_kernel
from repro.workloads.generator import mutate, random_sequence

GENOME_LENGTH = 100_000
READ_LENGTH = 150
READ_COUNT = 60
ERROR_RATE = 0.03


def sequence_reads(genome: str, rng: random.Random):
    """Sample reads (with errors) from random positions and strands."""
    reads = []
    for _ in range(READ_COUNT):
        origin = rng.randrange(0, len(genome) - READ_LENGTH)
        fragment = genome[origin : origin + READ_LENGTH]
        strand = rng.choice("+-")
        if strand == "-":
            fragment = reverse_complement(fragment)
        reads.append((mutate(fragment, ERROR_RATE, rng), origin, strand))
    return reads


def main() -> None:
    rng = random.Random(31337)
    genome = random_sequence(GENOME_LENGTH, rng)
    mapper = ReadMapper(genome, k=16, max_error_rate=0.08)
    reads = sequence_reads(genome, rng)

    mapped = 0
    correct = 0
    total_errors = 0
    for read, origin, strand in reads:
        mapping = mapper.map_read(read)
        if mapping is None:
            continue
        mapped += 1
        total_errors += mapping.score
        if mapping.strand == strand and abs(mapping.position - origin) <= 8:
            correct += 1

    print(f"genome            : {GENOME_LENGTH:,} bp (synthetic)")
    print(
        f"reads             : {READ_COUNT} x {READ_LENGTH} bp @ "
        f"{ERROR_RATE:.0%} error, both strands"
    )
    print(f"mapped            : {mapped}/{READ_COUNT}")
    print(f"correct locations : {correct}/{mapped}")
    print(f"mean edit distance: {total_errors / mapped:.2f}")

    timing = estimate_kernel(mapper.stats, RTL_INORDER.core, RTL_INORDER.memory)
    print(
        f"verification work : {mapper.stats.total_instructions:,} modelled "
        f"instructions ({mapper.stats.instructions['gmx']:,} gmx ops)"
    )
    print(
        f"on the RTL SoC    : {timing.seconds * 1e3:.2f} ms total, "
        f"{READ_COUNT / timing.seconds:,.0f} reads/s verification throughput"
    )
    if correct < mapped or mapped < READ_COUNT * 0.95:
        raise SystemExit("mapping accuracy regressed")
    print("all reads mapped to their true location and strand")


if __name__ == "__main__":
    main()
